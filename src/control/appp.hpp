// The application provider's control plane.
//
// Owns the telemetry pipeline (collector -> windowed group-by), the A2I
// looking glass it serves to InfPs, the subscription to InfPs' I2A looking
// glasses, and the two player brains:
//
//  * BaselineBrain -- today's world: rate-based ABR plus trial-and-error
//    whole-CDN switching after stalls; no network visibility.
//  * EonaBrain     -- same mechanics, but consuming I2A: congestion
//    attributed to the access network suppresses CDN switching and caps the
//    bitrate instead (Fig 3); server hints enable intra-CDN server switches
//    (§2 coarse control); peering status steers CDN choice (Fig 5).
//
// The controller also maintains the session-granularity knob the paper's
// Fig 5 story needs: the *primary CDN* new sessions are steered to.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "app/cdn.hpp"
#include "app/video_player.hpp"
#include "control/dampening.hpp"
#include "control/oscillation.hpp"
#include "eona/exchange.hpp"
#include "eona/messages.hpp"
#include "eona/robust.hpp"
#include "net/network.hpp"
#include "sim/event_bus.hpp"
#include "sim/events.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/delivery_health.hpp"

namespace eona::control {

struct AppPConfig {
  Duration control_period = 10.0;
  Duration qoe_window = 60.0;
  std::size_t qoe_window_buckets = 6;
  // --- ABR ---
  double abr_safety = 0.8;       ///< use at most this fraction of est. tput
  Duration panic_buffer = 4.0;   ///< below this, lowest rendition
  /// Buffer fill fraction above which the player probes one rendition above
  /// the throughput-safe choice (how real players discover headroom -- and
  /// how a crowd of them destabilises a saturated bottleneck). EONA
  /// suppresses the probe while access congestion is signalled.
  double probe_up_buffer = 0.70;
  /// Renditions the ABR may step DOWN per chunk (FESTIVE-style smoothing;
  /// real players damp downswitches to avoid reacting to noise). 0 =
  /// unlimited. EONA lifts the limit while congestion is signalled: the
  /// attribution says the drop is real, so jump straight to sustainable.
  std::size_t max_down_steps = 1;
  // --- switching ---
  std::uint64_t stalls_before_switch = 1;
  /// Baseline players also abandon an endpoint when sustained throughput
  /// cannot carry this rung of the ladder (Liu et al. 2012's CDN-switching
  /// players). 0 disables. EONA gates this on congestion attribution.
  std::size_t poor_throughput_rung = 1;
  double server_overload_threshold = 0.90;  ///< hinted load triggering move
  // --- Fig 3 congestion reaction ---
  double congestion_severity_threshold = 0.2;
  double congestion_bitrate_margin = 0.5;  ///< tput discount at severity 1
  // --- primary-CDN (Fig 5) ---
  double bad_qoe_buffering = 0.10;  ///< window mean buffering forcing switch
  BitsPerSecond bad_qoe_bitrate = 0.0;  ///< window mean bitrate below this is
                                        ///< also "bad QoE" (0 disables)
  Duration primary_dwell = 0.0;     ///< optional dampening on the knob
  // --- A2I export ---
  std::uint64_t k_anonymity = 5;
  /// Per-session rate the AppP *intends* to deliver (the paper's "traffic
  /// intended to different CDNs"). When > 0, forecasts report
  /// active-session-count * intended_bitrate rather than the (possibly
  /// already-degraded) measured volume. 0 = report measured volume.
  BitsPerSecond intended_bitrate = 0.0;
  /// Beacon cadence assumed when estimating active sessions from window
  /// record counts (must match PlayerConfig::beacon_period).
  Duration assumed_beacon_period = 10.0;
  /// Multiplier on every exported traffic forecast: a misbehaving tenant
  /// over-reports its QoE pain to grab egress share on the exchange
  /// (federation scenario). 1.0 = honest, byte-identical.
  double forecast_exaggeration = 1.0;
  // --- I2A robustness (§5 graceful degradation) ---
  /// When false, a control tick whose fetches all miss *clears* the I2A view
  /// (the naive consumer trusts only what it just read) -- the fragile mode
  /// the fault-tolerance bench contrasts against.
  bool robust_fetch = true;
  /// Retry/backoff + freshness policy for I2A fetches. The default (no
  /// retries, infinite freshness) reproduces the plain one-fetch-per-tick
  /// behaviour exactly.
  core::RetryPolicy i2a_retry{};
  /// While every I2A subscription is stale (per the freshness deadline), the
  /// primary-CDN dwell is multiplied by this factor: with degraded
  /// information the controller acts more conservatively. Only active when
  /// i2a_retry.freshness_deadline is finite.
  double stale_widening = 2.0;
  /// Backoff schedule for broker re-registration after an exchange crash
  /// (armed automatically when the controller is bound to an exchange).
  core::ReattachPolicy reattach{};
  // --- endpoint health (data-plane fetch failures) ---
  /// Hold-down policy the EONA brain applies to endpoints whose fetches the
  /// data plane aborted (dead path / crashed server): consecutive failures
  /// back the fleet off exponentially; one delivered chunk forgives.
  core::EndpointHealth::Policy endpoint_health{};
};

/// AppP control plane; see file header.
class AppPController {
 public:
  AppPController(sim::Scheduler& sched, net::Network& network,
                 const app::CdnDirectory& cdns, ProviderId self,
                 AppPConfig config = {});

  AppPController(const AppPController&) = delete;
  AppPController& operator=(const AppPController&) = delete;
  ~AppPController();

  // --- telemetry in ---
  [[nodiscard]] telemetry::BeaconCollector& collector() { return collector_; }

  // --- EONA wiring ---
  /// Bind this controller to its exchange identity. All A2I publishes and
  /// I2A fetches flow through the broker; unbound controllers (bare unit
  /// fixtures) skip publishing and cannot subscribe. Binding also arms the
  /// endpoint's broker re-registration chain (config().reattach) with a
  /// seed derived from the tenant identity alone.
  void bind_exchange(core::ExchangeEndpoint port);
  [[nodiscard]] const core::ExchangeEndpoint& port() const { return port_; }
  /// Subscribe to an InfP tenant's I2A leg on the exchange (the broker
  /// holds the bearer token; the leg must have been wired).
  void subscribe_i2a(ProviderId infp);
  /// Drop the subscription to a departing InfP tenant (mid-run churn): its
  /// fetcher dies, its contribution leaves the merged I2A view, and its
  /// fetch counters are folded into the controller's history.
  void unsubscribe_i2a(ProviderId infp);

  /// Attach the world's event bus: steering decisions are published with
  /// attributed reasons, the i2a delivery-health accumulator is rewired
  /// as a ReportServedEvent subscriber (identical update sequence to the
  /// direct call it replaces), and broker FaultEvents are forwarded to the
  /// exchange endpoint so a crash starts its reattach chain immediately.
  void set_event_bus(sim::EventBus* bus);
  void set_eona_enabled(bool enabled) { eona_enabled_ = enabled; }
  [[nodiscard]] bool eona_enabled() const { return eona_enabled_; }

  /// Newest I2A report visible across subscriptions (merged); nullopt until
  /// the first report arrives. Refreshed each control tick (and, with
  /// retries enabled, whenever a backoff re-fetch lands newer data).
  [[nodiscard]] const std::optional<core::I2AReport>& latest_i2a() const {
    return latest_i2a_;
  }

  /// True while no I2A subscription holds data within the freshness
  /// deadline (always false before the first tick).
  [[nodiscard]] bool i2a_stale() const { return i2a_stale_; }

  /// Combined delivery-health snapshot of the I2A consumption path:
  /// producer-side channel counters + fetch counters + staleness quantile.
  [[nodiscard]] telemetry::DeliveryHealthSnapshot i2a_health() const;

  // --- brains ---
  [[nodiscard]] app::PlayerBrain& brain();  ///< active per eona_enabled()
  [[nodiscard]] app::PlayerBrain& baseline_brain();
  [[nodiscard]] app::PlayerBrain& eona_brain();

  // --- control loop ---
  /// Begin periodic control (publish A2I, refresh I2A, steer primary CDN).
  void start();
  void stop();
  /// One control epoch, callable directly by tests.
  void tick();

  /// The CDN new sessions are steered to.
  [[nodiscard]] CdnId primary_cdn() const { return primary_cdn_; }
  /// `reason` labels the SteeringEvent emitted on the bus (if attached).
  void set_primary_cdn(CdnId cdn, const char* reason = "operator");

  /// Round-robin successor in directory order (baseline switching order).
  [[nodiscard]] CdnId next_cdn_after(CdnId current) const;

  /// Decision history of the primary-CDN knob (oscillation analysis).
  [[nodiscard]] const DecisionTrace& primary_trace() const {
    return primary_trace_;
  }

  /// Builds the current A2I report from the windowed aggregates (exposed
  /// for tests and the interface-width experiment).
  [[nodiscard]] core::A2IReport build_a2i_report() const;

  [[nodiscard]] const AppPConfig& config() const { return config_; }
  [[nodiscard]] ProviderId id() const { return self_; }
  [[nodiscard]] std::uint64_t ticks() const { return tick_count_; }

  /// Data-plane fetch failures the EONA brain has recorded (fleet-wide: one
  /// player's aborted fetch holds the endpoint down for every player).
  [[nodiscard]] std::uint64_t endpoint_failures() const;

 private:
  class BaselineBrain;
  class EonaBrain;

  void refresh_i2a();
  /// Rebuild latest_i2a_ from the robust fetchers' last-known-good reports.
  void remerge_i2a();
  /// Mirror this tick's exported A2I tuples onto the bus (one event per
  /// QoE group / forecast tuple) for traces and the telemetry store.
  void publish_a2i_samples(const core::A2IReport& report);
  /// Record the report age served to control logic this epoch: published on
  /// the bus (accumulator subscribed) or fed directly when no bus attached.
  void observe_i2a_serve(Duration age, bool stale);
  /// Publish a held (suppressed) steering decision.
  void hold_primary_cdn(const char* reason);
  /// Consumes the tick's already-built A2I report (forecast headroom check)
  /// instead of rebuilding it.
  void steer_primary_cdn(const core::A2IReport& report);
  /// Window-mean buffering ratio of sessions on `cdn`; nullopt if no data.
  [[nodiscard]] std::optional<double> cdn_buffering(CdnId cdn) const;
  /// Is the primary CDN's windowed QoE below the acceptability bar?
  [[nodiscard]] bool primary_qoe_bad() const;

  sim::Scheduler& sched_;
  net::Network& network_;
  const app::CdnDirectory& cdns_;
  ProviderId self_;
  AppPConfig config_;

  telemetry::BeaconCollector collector_;
  telemetry::WindowedAggregator by_isp_cdn_;
  telemetry::WindowedAggregator by_isp_cdn_server_;

  core::ExchangeEndpoint port_;
  struct I2ASubscription {
    ProviderId producer;  ///< the InfP tenant whose leg this subscribes
    std::unique_ptr<core::RobustFetcher<core::I2AReport>> fetcher;
  };
  std::vector<I2ASubscription> subscriptions_;
  std::optional<core::I2AReport> latest_i2a_;
  bool i2a_stale_ = false;
  telemetry::DeliveryHealth i2a_delivery_;
  core::FetchStats naive_stats_;  ///< fetch counters in non-robust mode
  sim::EventBus* bus_ = nullptr;

  bool eona_enabled_ = false;
  CdnId primary_cdn_;
  DecisionTrace primary_trace_;
  DwellTimer primary_dwell_;
  std::uint64_t tick_count_ = 0;

  std::unique_ptr<BaselineBrain> baseline_brain_;
  std::unique_ptr<EonaBrain> eona_brain_;
  std::unique_ptr<sim::PeriodicTask> task_;
};

}  // namespace eona::control
