// Figure 3 scenario: a flash crowd congests the access ISP.
//
// HTTP adaptive players see collapsing throughput. In the baseline world
// the only recourse is CDN switching -- which cannot help, because the
// bottleneck is the shared access segment -- so players thrash between
// CDNs and buffer. In the EONA world the ISP's I2A congestion attribution
// ("it's the access network") suppresses switching and steers the ABR to
// step the aggregate down so the bottleneck drains.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "control/forecaster.hpp"
#include "control/infp.hpp"
#include "eona/fault.hpp"
#include "eona/robust.hpp"
#include "scenarios/common.hpp"
#include "sim/timeseries.hpp"
#include "telemetry/column_store.hpp"
#include "telemetry/delivery_health.hpp"

namespace eona::scenarios {

struct FlashCrowdConfig {
  std::uint64_t seed = 1;
  ControlMode mode = ControlMode::kBaseline;
  BitsPerSecond access_capacity = mbps(60);
  BitsPerSecond origin_capacity = mbps(80);  ///< cache-miss detour capacity
  double arrival_rate = 0.35;  ///< steady video session arrivals/s
  /// The flash crowd: a surge of *other* traffic (news event, software
  /// rollout) that claims this fraction of the access capacity during the
  /// crowd window, squeezing the mid-stream video population.
  double crowd_background_fraction = 0.75;
  std::size_t crowd_flows = 120;  ///< the surge arrives as this many flows
  TimePoint crowd_start = 180.0;
  TimePoint crowd_end = 480.0;
  TimePoint run_duration = 780.0;
  Duration video_duration = 150.0;
  // --- EONA data-plane staleness (E8 sweeps these) ---
  Duration a2i_delay = 0.0;
  Duration i2a_delay = 0.0;
  // --- export policies (E7 interface-width sweeps) ---
  core::A2IPolicy a2i_policy{};
  core::I2APolicy i2a_policy{};
  // --- control-plane fault injection (E13 fault-tolerance bench) ---
  /// Per-direction fault profiles. A profile whose seed is 0 gets a
  /// deterministic seed derived from `seed`, so sweeps stay reproducible
  /// without coupling fault draws to the workload stream.
  core::FaultProfile a2i_fault{};
  core::FaultProfile i2a_fault{};
  // --- consumer robustness (both directions) ---
  bool robust_fetch = true;
  core::RetryPolicy retry{};
  double stale_widening = 2.0;
  /// When set, subscribed to the world's event bus before anything else is
  /// wired: the run appends its full JSONL event trace to this writer.
  /// Optional chaos plan (FaultPlan grammar; see scenarios/chaos.hpp).
  /// Empty = no fault injection, byte-identical to the plan-free build.
  std::string faults;
  sim::TraceWriter* trace = nullptr;
  /// When set, a StoreRecorder feeds this columnar store the run's event
  /// stream (same stream the trace sees; eona_lab --store=FILE dumps it).
  telemetry::ColumnStore* store = nullptr;
  /// When non-null, accumulates run-cost counters (scheduler events).
  RunPerf* perf = nullptr;
  // --- elastic capacity provisioning (E16; off by default) ---
  /// InfP access-capacity provisioning. Forecast-driven mode additionally
  /// attaches a telemetry store to the InfP (config.store, or an internal
  /// one when none is passed) so the forecaster trends link_rate rows.
  control::ProvisionConfig provision{};
  control::ForecastConfig forecast{};
  /// stalled_fraction above this counts toward time_over_qoe_threshold.
  double qoe_stall_threshold = 0.05;
};

struct FlashCrowdResult {
  QoeSummary qoe;         ///< all finished sessions
  QoeSummary crowd_qoe;   ///< sessions that finished during/just after the crowd
  double peak_stalled_fraction = 0.0;
  double mean_access_utilization = 0.0;  ///< during the crowd
  std::uint64_t arrivals = 0;
  sim::MetricSet metrics;  ///< series: stalled_fraction, active_sessions,
                           ///< mean_bitrate, access_util (2 s cadence)
  /// Delivery health of each consumption direction (AppP reading I2A,
  /// InfP reading A2I).
  telemetry::DeliveryHealthSnapshot i2a_health;
  telemetry::DeliveryHealthSnapshot a2i_health;
  // --- E16 provisioning outcomes ---
  /// Seconds of the run with stalled_fraction above qoe_stall_threshold
  /// (time-weighted over the 2 s sampling cadence).
  double time_over_qoe_threshold = 0.0;
  std::uint64_t provision_orders = 0;
  BitsPerSecond final_access_capacity = 0.0;
};

/// Build the world, run it, and summarise.
[[nodiscard]] FlashCrowdResult run_flash_crowd(const FlashCrowdConfig& config);

}  // namespace eona::scenarios
