// Federated exchange scenario (E19): three AppP tenants x two InfP tenants
// on one brokered interface plane, with one tenant lying for advantage.
//
// Each ISP divides a fixed egress pool across the three CDNs' ingress links
// in proportion to the A2I traffic forecasts it can see (InfPConfig::
// EgressShareConfig). Tenant 0 multiplies every exported forecast by
// `exaggeration` to grab pool share; tenants 1 and 2 report honestly. The
// knob under test is the broker: with `broker` on, the exchange enforces a
// per-tenant egress-share quota (TenantQuota, Exchange::set_egress_reference)
// and clamps the liar's claims before any InfP sees them; with it off, the
// claims pass through untouched and the honest tenants' viewers starve.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "scenarios/common.hpp"
#include "telemetry/column_store.hpp"

namespace eona::scenarios {

struct FederationConfig {
  std::uint64_t seed = 1;
  /// Broker quota enforcement: the exchange clamps each tenant's per-ISP
  /// forecast claims to its egress-share quota (1/3 of the pool each).
  bool broker = true;
  /// Tenant 0's forecast multiplier (>1 = misbehaving; honest tenants 1.0).
  double exaggeration = 6.0;
  double arrival_rate = 0.2;  ///< sessions/s per tenant (split across ISPs)
  BitsPerSecond pool = mbps(120);  ///< per-ISP egress pool to divide
  BitsPerSecond access_capacity = mbps(250);  ///< per-ISP shared access link
  Duration video_duration = 120.0;
  TimePoint run_duration = 600.0;
  /// When set, receives the run's JSONL event trace.
  /// Optional chaos plan (FaultPlan grammar; see scenarios/chaos.hpp).
  /// Empty = no fault injection, byte-identical to the plan-free build.
  std::string faults;
  sim::TraceWriter* trace = nullptr;
  /// When set, a StoreRecorder feeds this columnar store the run's events.
  telemetry::ColumnStore* store = nullptr;
  /// When non-null, accumulates run-cost counters (scheduler events).
  RunPerf* perf = nullptr;
};

struct FederationResult {
  QoeSummary liar;     ///< tenant 0 (the over-reporter)
  QoeSummary victim1;  ///< tenant 1 (honest)
  QoeSummary victim2;  ///< tenant 2 (honest)
  double victim_mean_engagement = 0.0;  ///< mean over the two honest tenants
  double victim_mean_bitrate = 0.0;     ///< bps, mean over honest tenants
  /// Egress-pool fraction each side ended up with (mean over both ISPs).
  double liar_share = 0.0;
  double victim_share = 0.0;  ///< mean over the two honest CDNs
  std::uint64_t clamps = 0;   ///< broker quota-clamp activations
  std::uint64_t rate_limited = 0;    ///< reports dropped by per-leg rate caps
  std::uint64_t epoch_rejected = 0;  ///< publishes fenced by a stale epoch
};

[[nodiscard]] FederationResult run_federation(const FederationConfig& config);

}  // namespace eona::scenarios
