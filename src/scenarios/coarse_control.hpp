// §2 "coarse control" scenario: a server inside CDN 1 degrades mid-run.
//
// Baseline players can only react at CDN granularity: they abandon CDN 1
// wholesale for CDN 2, whose caches are cold -- every fetch detours through
// the narrow origin path, so the "fix" hurts, and CDN 1 loses the traffic
// (and revenue). With EONA-I2A server hints the players switch to CDN 1's
// healthy sibling server, whose cache is warm: less disruption, and the CDN
// keeps the traffic.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "scenarios/common.hpp"
#include "sim/timeseries.hpp"
#include "telemetry/column_store.hpp"

namespace eona::scenarios {

struct CoarseControlConfig {
  std::uint64_t seed = 1;
  ControlMode mode = ControlMode::kBaseline;
  double arrival_rate = 0.25;
  Duration video_duration = 180.0;
  TimePoint incident_at = 240.0;
  TimePoint run_duration = 900.0;
  BitsPerSecond server_capacity = mbps(150);
  BitsPerSecond origin_capacity = mbps(30);  ///< the cold-cache penalty
  double degraded_factor = 0.05;  ///< bad server keeps this capacity share
  std::size_t catalog_size = 40;
  /// When set, receives the run's JSONL event trace.
  /// Optional chaos plan (FaultPlan grammar; see scenarios/chaos.hpp).
  /// Empty = no fault injection, byte-identical to the plan-free build.
  std::string faults;
  sim::TraceWriter* trace = nullptr;
  /// When set, a StoreRecorder feeds this columnar store the run's event
  /// stream (eona_lab --store=FILE dumps it as queryable rows).
  telemetry::ColumnStore* store = nullptr;
  /// When non-null, accumulates run-cost counters (scheduler events).
  RunPerf* perf = nullptr;
};

struct CoarseControlResult {
  QoeSummary qoe;            ///< all sessions
  QoeSummary post_incident;  ///< sessions finishing after the incident
  double cdn1_traffic_share = 0.0;   ///< post-incident bits via CDN 1
  double cdn2_hit_ratio = 0.0;       ///< CDN 2 cache hits (cold-start pain)
  std::uint64_t cdn_switches = 0;
  std::uint64_t server_switches = 0;
  sim::MetricSet metrics;  ///< series: stalled_fraction
};

[[nodiscard]] CoarseControlResult run_coarse_control(
    const CoarseControlConfig& config);

}  // namespace eona::scenarios
