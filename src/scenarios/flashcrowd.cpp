#include "scenarios/flashcrowd.hpp"

#include "app/content_catalog.hpp"
#include "app/video_player.hpp"
#include "app/workload.hpp"
#include "scenarios/chaos.hpp"
#include "scenarios/world.hpp"

namespace eona::scenarios {

FlashCrowdResult run_flash_crowd(const FlashCrowdConfig& config) {
  // Forecast-driven provisioning trends the store's link_rate rows; when
  // the caller did not pass a store, feed the InfP an internal one.
  // Declared before the builder so it outlives the world's recorder.
  telemetry::ColumnStore internal_store;
  telemetry::ColumnStore* store = config.store;
  if (store == nullptr && config.provision.enabled &&
      config.provision.forecast_driven)
    store = &internal_store;

  sim::World::Builder b(config.seed);
  b.attach_trace(config.trace);
  b.attach_store(store);

  // --- topology: two CDNs behind one access-ISP bottleneck -----------------
  b.add_isp_bottleneck(config.access_capacity);
  net::Topology& topo = b.topology();
  NodeId client = b.client();
  NodeId srv1 = topo.add_node(net::NodeKind::kCdnServer, "cdn1-srv");
  NodeId srv2 = topo.add_node(net::NodeKind::kCdnServer, "cdn2-srv");
  NodeId origin1 = topo.add_node(net::NodeKind::kOrigin, "cdn1-origin");
  NodeId origin2 = topo.add_node(net::NodeKind::kOrigin, "cdn2-origin");

  LinkId access = b.access_link();
  LinkId peer1 = topo.add_link(srv1, b.edge(), gbps(1), milliseconds(8));
  LinkId peer2 = topo.add_link(srv2, b.edge(), gbps(1), milliseconds(8));
  topo.add_link(origin1, srv1, config.origin_capacity, milliseconds(20));
  topo.add_link(origin2, srv2, config.origin_capacity, milliseconds(20));

  IspId isp(0);
  b.build_network(isp);
  net::Network& network = b.world().network();
  net::PeeringBook& peering = b.world().peering();

  // --- delivery ecosystem ---------------------------------------------------
  b.with_catalog(20, config.video_duration, 0.8);
  app::ContentCatalog& catalog = b.world().catalog();
  app::Cdn& cdn1 = b.add_cdn_at("cdn-1", origin1);
  app::Cdn& cdn2 = b.add_cdn_at("cdn-2", origin2);
  ServerId s1 = cdn1.add_server(srv1, peer1, 32);
  ServerId s2 = cdn2.add_server(srv2, peer2, 32);
  peering.add(isp, cdn1.id(), peer1, "cdn1@edge");
  peering.add(isp, cdn2.id(), peer2, "cdn2@edge");
  cdn1.set_peering_book(&peering);
  cdn2.set_peering_book(&peering);
  // The AppP's primary CDN is warm; the rival is cold, so trial-and-error
  // switching into it pays the origin detour (the "disruption" of Fig 3).
  {
    std::vector<ContentId> all;
    for (std::size_t i = 0; i < catalog.size(); ++i)
      all.push_back(ContentId(static_cast<ContentId::rep_type>(i)));
    cdn1.warm_cache(s1, all);
    (void)s2;
  }

  // --- control planes ---------------------------------------------------------
  control::AppPConfig appp_cfg;
  appp_cfg.control_period = 5.0;
  appp_cfg.qoe_window = 30.0;
  appp_cfg.robust_fetch = config.robust_fetch;
  appp_cfg.i2a_retry = config.retry;
  appp_cfg.stale_widening = config.stale_widening;
  b.add_exchange();
  control::AppPController& appp = b.add_appp("video-appp", appp_cfg);

  control::InfPConfig infp_cfg;
  infp_cfg.control_period = 10.0;
  infp_cfg.robust_fetch = config.robust_fetch;
  infp_cfg.a2i_retry = config.retry;
  infp_cfg.stale_widening = config.stale_widening;
  infp_cfg.provision = config.provision;
  infp_cfg.forecast = config.forecast;
  control::InfPController& infp =
      b.add_infp("access-isp", isp, {access}, infp_cfg);
  if (store != nullptr) infp.attach_store(store);

  // A fault profile with seed 0 gets a deterministic per-direction seed
  // derived from the run seed (salted, so it never consumes workload RNG).
  core::FaultProfile a2i_fault = config.a2i_fault;
  core::FaultProfile i2a_fault = config.i2a_fault;
  if (a2i_fault.seed == 0) a2i_fault.seed = b.rng().fork_salted(0xA21).seed();
  if (i2a_fault.seed == 0) i2a_fault.seed = b.rng().fork_salted(0x12A).seed();
  core::TenantLink link;
  link.a2i_delay = config.a2i_delay;
  link.i2a_delay = config.i2a_delay;
  link.a2i_policy = config.a2i_policy;
  link.i2a_policy = config.i2a_policy;
  link.a2i_fault = std::move(a2i_fault);
  link.i2a_fault = std::move(i2a_fault);
  b.wire_tenant(0, 0, link);
  // Oracle mode models the hypothetical global controller: the player brain
  // introspects the network directly AND both control planes run fully
  // informed (baseline logic would pollute the upper bound).
  appp.set_eona_enabled(config.mode != ControlMode::kBaseline);
  infp.set_eona_enabled(config.mode != ControlMode::kBaseline);
  appp.start();
  infp.start();

  control::OracleBrain& oracle = b.add_oracle();
  app::PlayerBrain& brain = (config.mode == ControlMode::kOracle)
                                ? static_cast<app::PlayerBrain&>(oracle)
                                : appp.brain();

  // --- workload ----------------------------------------------------------------
  app::SessionPool& pool = b.add_session_pool();
  std::unique_ptr<sim::World> world = b.build();
  auto chaos = sim::schedule_faults(*world, config.faults);
  sim::Scheduler& sched = world->sched();
  net::TransferManager& transfers = world->transfers();
  const net::Routing& routing = world->routing();
  app::CdnDirectory& directory = world->directory();

  SessionId::rep_type next_session = 0;
  sim::Rng content_rng = world->rng().fork();
  app::PlayerConfig player_cfg;
  // A low floor so the crowd can squeeze renditions hard before starving.
  player_cfg.ladder = {kbps(200), kbps(450), mbps(1), mbps(2.5), mbps(6)};
  auto spawn = [&] {
    SessionId session(next_session++);
    telemetry::Dimensions dims;
    dims.isp = isp;
    ContentId content = catalog.sample(content_rng);
    pool.spawn_player(sched, transfers, network, routing, directory, brain,
                      &appp.collector(), player_cfg, session, dims, client,
                      catalog.item(content), qoe::EngagementModel{});
  };

  app::PoissonArrivals arrivals(sched, world->rng().fork(),
                                {{0.0, config.arrival_rate}},
                                config.run_duration - 60.0, spawn);

  // --- the flash crowd: background surge on the access link ----------------
  // Arrives in ten batches over twenty seconds (crowds ramp, they don't
  // teleport), leaves at crowd_end.
  std::vector<FlowId> crowd_flows;
  BitsPerSecond per_flow = config.access_capacity *
                           config.crowd_background_fraction /
                           static_cast<double>(config.crowd_flows);
  for (std::size_t batch = 0; batch < 10; ++batch) {
    sched.schedule_at(config.crowd_start + 2.0 * static_cast<double>(batch),
                      [&, batch] {
                        // One rate recompute per arrival wave, not per flow.
                        net::Network::Batch burst(network);
                        std::size_t per_batch = config.crowd_flows / 10;
                        for (std::size_t i = 0; i < per_batch; ++i)
                          crowd_flows.push_back(
                              network.add_flow({access}, per_flow));
                      });
  }
  sched.schedule_at(config.crowd_end, [&] {
    net::Network::Batch departure(network);
    for (FlowId f : crowd_flows) network.remove_flow(f);
    crowd_flows.clear();
  });

  // --- sampling ------------------------------------------------------------------
  if (config.perf != nullptr) {
    config.perf->events += sched.events_fired();
    config.perf->add_exchange(world->exchange());
  }
  FlashCrowdResult result;
  sim::PeriodicTask sampler(sched, 2.0, [&] {
    TimePoint now = sched.now();
    std::size_t active = 0, stalled = 0;
    double bitrate = 0.0;
    pool.for_each([&](app::VideoPlayer& p) {
      ++active;
      if (p.stalled()) ++stalled;
      bitrate += player_cfg.ladder[p.bitrate_index()];
    });
    double stalled_fraction =
        active == 0 ? 0.0 : static_cast<double>(stalled) / active;
    result.metrics.series("stalled_fraction").record(now, stalled_fraction);
    result.metrics.series("active_sessions")
        .record(now, static_cast<double>(active));
    result.metrics.series("mean_bitrate")
        .record(now, active == 0 ? 0.0 : bitrate / active);
    result.metrics.series("access_util")
        .record(now, network.link_utilization(access));
  });

  // --- run -------------------------------------------------------------------------
  sched.run_until(config.run_duration);
  arrivals.stop();
  pool.abort_all();
  sched.run_until(config.run_duration + 1.0);
  world->auditor().finalize();

  // --- summarise ----------------------------------------------------------------------
  result.arrivals = arrivals.arrivals();
  result.qoe = QoeSummary::from(pool.summaries());
  result.crowd_qoe = QoeSummary::from(
      pool.summaries(), [&](const app::SessionSummary& s) {
        return s.record.timestamp >= config.crowd_start &&
               s.record.timestamp <= config.crowd_end + 60.0;
      });
  const auto& stalled_series = result.metrics.series("stalled_fraction");
  result.peak_stalled_fraction =
      stalled_series.empty() ? 0.0 : stalled_series.max();
  // Time over the QoE bar: each sample holds until the next one (the final
  // sample for one sampler period).
  {
    const auto& samples = stalled_series.samples();
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if (samples[i].value <= config.qoe_stall_threshold) continue;
      result.time_over_qoe_threshold +=
          i + 1 < samples.size() ? samples[i + 1].t - samples[i].t : 2.0;
    }
  }
  result.provision_orders = infp.provision_orders();
  result.final_access_capacity = network.link_capacity(access);
  const auto& util_series = result.metrics.series("access_util");
  if (!util_series.empty() && config.crowd_end > config.crowd_start)
    result.mean_access_utilization = util_series.time_weighted_mean(
        config.crowd_start, config.crowd_end);
  result.i2a_health = appp.i2a_health();
  result.a2i_health = infp.a2i_health();
  return result;
}

}  // namespace eona::scenarios
