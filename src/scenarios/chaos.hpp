// Seeded, declarative fault injection for the infrastructure plane.
//
// A FaultPlan is a list of timestamped actions -- link down/up, capacity
// brown-outs, CDN server crash/restart -- either built programmatically or
// parsed from the compact text form the lab CLI accepts:
//
//     kind:target@t[:factor][;kind:target@t[:factor]...]
//
//     down:X@B@120            take link "X@B" down at t=120
//     up:X@B@180              bring it back at t=180
//     brownout:X@B@60:0.25    link keeps 25% of configured capacity
//     crash:cdn-X/0@90        crash server #0 of CDN "cdn-X" (offline +
//                             egress link down)
//     restart:cdn-X/0@150     undo the crash
//     crash:exchange@90       the broker itself dies: epoch bump, every
//                             bearer token fenced, all legs torn down
//     restart:exchange@150    broker back up; tenants reattach via their
//                             ExchangeEndpoint backoff handshake
//
// Malformed clauses are rejected with the offending token AND its byte
// position in the plan string -- nothing is silently skipped.
//
// Link targets are topology link *names* (which may themselves contain '@';
// the parser splits on the last '@' of each clause). Several actions with
// the same timestamp -- e.g. the two directions of a partition -- execute as
// ONE scheduler event and ONE Network batch, so the data plane sees a
// single consistent mutation and re-solves rates once.
//
// The ChaosEngine turns a plan into scheduler posts against a live World:
// mutations go through net::Network (set_link_up / set_link_capacity) and
// app::Cdn (set_online), and every executed action is published as a typed
// FaultEvent on the bus -- which is how EONA-mode controllers learn of the
// outage instantly while baseline controllers must detect it from their
// windowed link statistics.
//
// Determinism: a plan carries no randomness of its own; execution order
// within a timestamp group is the plan's textual order. Identical plan +
// identical world seed => byte-identical traces (pinned by
// tests/chaos_failover_test.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "app/cdn.hpp"
#include "common/ids.hpp"
#include "common/units.hpp"
#include "net/network.hpp"
#include "sim/event_bus.hpp"
#include "sim/events.hpp"
#include "sim/scheduler.hpp"

namespace eona::core {
class Exchange;
}  // namespace eona::core

namespace eona::sim {

/// One declarative infrastructure fault; see file header for the text form.
struct FaultAction {
  enum class Kind {
    kLinkDown,
    kLinkUp,
    kBrownout,
    kServerCrash,
    kServerRestart,
    kExchangeCrash,    ///< the broker dies (parsed from crash:exchange@t)
    kExchangeRestart,  ///< the broker returns (restart:exchange@t)
  };

  Kind kind = Kind::kLinkDown;
  TimePoint at = 0.0;
  /// Topology link name, "cdnname/serverindex" for the server kinds, or the
  /// literal "exchange" for broker faults.
  std::string target;
  /// Brownout only: remaining fraction of configured capacity, in (0, 1].
  double factor = 1.0;
};

/// An ordered list of faults (the declarative side of the chaos engine).
struct FaultPlan {
  std::vector<FaultAction> actions;

  /// Parse the compact text form; throws ConfigError on malformed input.
  /// An empty spec yields an empty plan.
  static FaultPlan parse(const std::string& spec);

  [[nodiscard]] bool empty() const { return actions.empty(); }
};

/// Executes a FaultPlan against a live world; see file header.
class ChaosEngine {
 public:
  /// `cdns` may be null when the plan contains no server actions.
  ChaosEngine(Scheduler& sched, EventBus& bus, net::Network& network,
              const app::CdnDirectory* cdns = nullptr);

  ChaosEngine(const ChaosEngine&) = delete;
  ChaosEngine& operator=(const ChaosEngine&) = delete;
  ~ChaosEngine();

  /// Attach the brokered exchange so `crash:exchange` / `restart:exchange`
  /// actions have a target. Plans without broker faults never need this.
  void set_exchange(core::Exchange* exchange) { exchange_ = exchange; }

  /// Resolve every target against the current topology/directory (throws
  /// ConfigError on unknown names) and post the plan's actions. Same-time
  /// actions are grouped into one scheduler event.
  void schedule(const FaultPlan& plan);

  /// Faults executed so far.
  [[nodiscard]] std::uint64_t fault_count() const { return fault_count_; }

 private:
  struct Resolved {
    FaultAction::Kind kind;
    LinkId link;          ///< the mutated link (server kinds: the egress)
    double factor = 1.0;  ///< brownout fraction
    app::Cdn* cdn = nullptr;  ///< server kinds only
    ServerId server;          ///< server kinds only
  };

  [[nodiscard]] Resolved resolve(const FaultAction& action) const;
  void execute(const std::vector<Resolved>& group);

  Scheduler& sched_;
  EventBus& bus_;
  net::Network& network_;
  const app::CdnDirectory* cdns_;
  core::Exchange* exchange_ = nullptr;  ///< broker faults only
  Gate gate_;  ///< revokes pending fault posts if the engine dies first
  std::uint64_t fault_count_ = 0;
};

class World;  // scenarios/world.hpp

/// Wire a ChaosEngine against a built world from a scenario config's
/// `faults` knob (the lab's --faults=PLAN flag on every scenario). The
/// exchange is attached automatically when the world has one. Returns
/// nullptr for the empty spec, so fault-free runs execute exactly the code
/// they always did -- their output stays byte-identical (pinned by
/// tests/scenario_faults_test.cpp).
[[nodiscard]] std::unique_ptr<ChaosEngine> schedule_faults(
    World& world, const std::string& spec);

}  // namespace eona::sim
