// The ~30-line starter scenario: one access bottleneck, one warm CDN, one
// AppP/InfP pair -- everything assembled through the sim::World::Builder
// conveniences (no direct Scheduler/Network/TransferManager construction).
//
// This is the template to copy when adding a new experiment, and the
// README's quick-start example; it stays deliberately boring so the Builder
// surface, not the scenario, is what a reader learns from it.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "scenarios/common.hpp"
#include "telemetry/column_store.hpp"

namespace eona::scenarios {

struct QuickstartConfig {
  std::uint64_t seed = 1;
  ControlMode mode = ControlMode::kBaseline;
  double arrival_rate = 0.3;  ///< sessions/s through the bottleneck
  BitsPerSecond access_capacity = mbps(60);
  Duration video_duration = 120.0;
  TimePoint run_duration = 600.0;
  /// When set, receives the run's JSONL event trace.
  /// Optional chaos plan (FaultPlan grammar; see scenarios/chaos.hpp).
  /// Empty = no fault injection, byte-identical to the plan-free build.
  std::string faults;
  sim::TraceWriter* trace = nullptr;
  /// When set, a StoreRecorder feeds this columnar store the run's event
  /// stream (eona_lab --store=FILE dumps it as queryable rows).
  telemetry::ColumnStore* store = nullptr;
  /// When non-null, accumulates run-cost counters (scheduler events).
  RunPerf* perf = nullptr;
};

struct QuickstartResult {
  QoeSummary qoe;
};

[[nodiscard]] QuickstartResult run_quickstart(const QuickstartConfig& config);

}  // namespace eona::scenarios
