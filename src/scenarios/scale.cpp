#include "scenarios/scale.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <optional>
#include <span>

#include "app/content_catalog.hpp"
#include "app/video_player.hpp"
#include "app/workload.hpp"
#include "scenarios/world.hpp"
#include "sim/sector.hpp"

namespace eona::scenarios {
namespace {

constexpr TimePoint kNever = std::numeric_limits<TimePoint>::infinity();

/// One ISP x CDN-region cell: a full mini world plus its workload state.
/// Everything here is private to the sector between barriers, so worker
/// threads can advance different sectors concurrently.
struct Sector {
  std::unique_ptr<sim::World> world;
  app::SessionPool* pool = nullptr;
  control::AppPController* appp = nullptr;
  app::PlayerBrain* brain = nullptr;
  NodeId client;
  IspId isp{0};
  LinkId access;
  std::optional<sim::Rng> content_rng;
  std::optional<app::PoissonArrivals> arrivals;
  std::size_t quota = 0;    ///< sessions this sector must admit, exact
  std::size_t spawned = 0;  ///< sessions admitted so far
  SessionId::rep_type next_session = 0;
  bool window_closed = false;
  double grant = 0.0;  ///< current backbone headroom grant (bps)
  /// Coordinator-written: did the last grant pass move this sector's
  /// capacity? A moved capacity re-rates flows, so the sector must run
  /// next round (quiescence requires a settled grant).
  bool grant_changed = true;
};

/// Cache-line-padded per-sector mailbox: each worker publishes its sector's
/// coordination inputs here at the end of its parallel advance, so the
/// serial coordinator folds N plain doubles in sector order instead of
/// poking every sector's Network and SessionPool from the coordinator
/// thread -- and two workers never write the same cache line.
struct alignas(64) SectorSlot {
  double pressure = 0.0;  ///< max(0, access utilization - threshold)
  /// Earliest pending event in the sector's scheduler after its last
  /// advance; starts at 0 so every sector is dispatched in round one.
  double next_event = 0.0;
  std::uint32_t active = 0;      ///< live sessions after the last advance
  bool pressure_changed = true;  ///< pressure moved vs the previous round
};
static_assert(sizeof(SectorSlot) == 64, "one cache line per sector");

void spawn_session(Sector& sec) {
  SessionId session(sec.next_session++);
  telemetry::Dimensions dims;
  dims.isp = sec.isp;
  app::ContentCatalog& catalog = sec.world->catalog();
  ContentId content = catalog.sample(*sec.content_rng);
  sec.pool->spawn_player(sec.world->sched(), sec.world->transfers(),
                         sec.world->network(), sec.world->routing(),
                         sec.world->directory(), *sec.brain,
                         &sec.appp->collector(), app::PlayerConfig{}, session,
                         dims, sec.client, catalog.item(content),
                         qoe::EngagementModel{});
  ++sec.spawned;
}

/// Assemble one sector world -- the quickstart wiring, seeded from a salted
/// fork of the experiment seed so sectors draw independent streams.
std::unique_ptr<Sector> make_sector(const ScaleConfig& config,
                                    Duration window,
                                    std::uint64_t sector_seed,
                                    std::size_t quota) {
  auto sec = std::make_unique<Sector>();
  sim::World::Builder b(sector_seed);
  b.add_isp_bottleneck(config.access_capacity);
  b.with_catalog(16, config.video_duration);
  sim::World::Builder::CdnSpec cdn_spec;
  cdn_spec.warm = true;
  b.add_cdn("cdn", cdn_spec);
  b.build_network(sec->isp);

  b.add_exchange();
  control::AppPController& appp = b.add_appp("video-appp");
  control::InfPController& infp =
      b.add_infp("access-isp", sec->isp, {b.access_link()});
  b.wire_tenant();
  const bool eona = config.mode != ControlMode::kBaseline;
  appp.set_eona_enabled(eona);
  infp.set_eona_enabled(eona);
  appp.start();
  infp.start();
  control::OracleBrain& oracle = b.add_oracle();

  sec->pool = &b.add_session_pool();
  sec->appp = &appp;
  sec->brain = (config.mode == ControlMode::kOracle)
                   ? static_cast<app::PlayerBrain*>(&oracle)
                   : &appp.brain();
  sec->client = b.client();
  sec->access = b.access_link();
  sec->world = b.build();
  sec->content_rng.emplace(sec->world->rng().fork());
  sec->quota = quota;

  // Pre-size the pool for the expected concurrency (admission rate x video
  // duration, doubled for burst slack) -- steady churn then never allocates.
  // Clamp the estimate's window to the video duration: a shorter window
  // (run_duration barely above video_duration, or an explicit short
  // arrival_window) means sessions genuinely all overlap, and the quota is
  // the true concurrency ceiling -- without the floor the rate x duration
  // estimate blows past the quota (and past what a size_t cast tolerates).
  Duration est_window = std::max(window, config.video_duration);
  auto concurrent = static_cast<std::size_t>(
      static_cast<double>(quota) * config.video_duration / est_window);
  sec->pool->reserve(std::min(quota, 2 * concurrent + 8));
  return sec;
}

}  // namespace

ScaleResult run_scale(const ScaleConfig& config) {
  EONA_EXPECTS(config.sectors >= 1);
  EONA_EXPECTS(config.threads >= 1);
  EONA_EXPECTS(config.barrier_period > 0.0);
  EONA_EXPECTS(config.video_duration > 0.0);
  EONA_EXPECTS(config.run_duration > config.video_duration);
  EONA_EXPECTS(config.arrival_window >= 0.0);
  EONA_EXPECTS(config.arrival_window <= config.run_duration);
  EONA_EXPECTS(config.diurnal_night_frac >= 0.0 &&
               config.diurnal_night_frac <= 1.0);

  // Arrival window: the historical default leaves exactly one video length
  // after the last arrival; an explicit shorter window models an evening
  // peak followed by a quiet tail (the regime quiescence elision targets).
  const Duration window = config.arrival_window > 0.0
                              ? config.arrival_window
                              : config.run_duration - config.video_duration;
  const std::size_t n = config.sectors;
  sim::Rng root(config.seed);

  std::vector<std::unique_ptr<Sector>> sectors;
  sectors.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    std::size_t quota =
        config.sessions / n + (s < config.sessions % n ? 1 : 0);
    sectors.push_back(
        make_sector(config, window, root.fork_salted(s).seed(), quota));
  }

  // Arrival processes: per-sector Poisson at quota/window (flat) or a
  // raised-cosine diurnal profile with the same mean, capped at the quota.
  // The diurnal trough runs at night_frac x mean (day peak compensates).
  for (auto& sec_ptr : sectors) {
    Sector& sec = *sec_ptr;
    double rate = static_cast<double>(sec.quota) / window;
    std::vector<app::ArrivalPhase> phases =
        config.diurnal
            ? app::diurnal_phases(config.diurnal_night_frac * rate,
                                  (2.0 - config.diurnal_night_frac) * rate,
                                  window, 8, window)
            : std::vector<app::ArrivalPhase>{{0.0, rate}};
    sec.arrivals.emplace(sec.world->sched(), sec.world->rng().fork(),
                         std::move(phases), window, [&sec] {
                           if (sec.spawned < sec.quota) spawn_session(sec);
                         });
  }

  // Barrier loop: advance the active sectors to the next coupling point
  // (workers touch disjoint sectors), then serially rebalance backbone
  // headroom from the per-sector slots.
  sim::SectorRunner runner(config.threads);
  ScaleResult result;
  result.per_sector.resize(n);
  const double headroom_pool = config.headroom_fraction *
                               config.access_capacity *
                               static_cast<double>(n);
  constexpr double kPressureThreshold = 0.9;

  std::vector<SectorSlot> slots(n);
  auto advance = [&](std::size_t s, TimePoint target) {
    Sector& sec = *sectors[s];
    sec.world->sched().run_until(target);
    if (!sec.window_closed && target >= window) {
      // The arrival window is over: stop the process and top up any Poisson
      // shortfall so the sector admits exactly its quota.
      sec.window_closed = true;
      sec.arrivals.reset();
      while (sec.spawned < sec.quota) spawn_session(sec);
    }
    // Publish this sector's coordination inputs from the worker thread;
    // the serial barrier only ever reads the slot.
    SectorSlot& slot = slots[s];
    double pressure = std::max(
        0.0, sec.world->network().link_utilization(sec.access) -
                 kPressureThreshold);
    slot.pressure_changed = pressure != slot.pressure;
    slot.pressure = pressure;
    slot.active = static_cast<std::uint32_t>(sec.pool->active_count());
    slot.next_event = sec.world->sched().next_event_time_or(kNever);
  };

  using Clock = std::chrono::steady_clock;
  auto ns_between = [](Clock::time_point a, Clock::time_point b) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
  };
  std::uint64_t advance_ns = 0;
  std::uint64_t barrier_ns = 0;

  std::vector<std::size_t> active_idx;
  active_idx.reserve(n);
  for (TimePoint target = config.barrier_period;;
       target += config.barrier_period) {
    target = std::min(target, config.run_duration);

    // Classify each sector for the round. Quiescent = nothing it would run
    // before `target` can change what the coordinator reads: no live
    // sessions (so no flows -- pressure is 0 and frozen), a settled grant
    // (a moved capacity re-rates flows and must be observed), no possible
    // arrival before the target, and not the round that closes the arrival
    // window (the quota top-off must run). Such a sector keeps only
    // periodic control ticks, which fire identically -- same times, same
    // order -- when its clock catches up later, so skipping the dispatch
    // is observationally equal to running it (DESIGN.md "Quiescence and
    // sparse barriers"). Everything read here is either coordinator-owned
    // or frozen since the sector's last advance.
    Clock::time_point c0 = Clock::now();
    active_idx.clear();
    for (std::size_t s = 0; s < n; ++s) {
      Sector& sec = *sectors[s];
      SectorSlot& slot = slots[s];
      const bool crossing = !sec.window_closed && target >= window;
      const bool arrivals_quiet =
          sec.window_closed || sec.arrivals->next_fire_at() > target;
      // Two ways a round can be skipped: the sector is idle (no sessions,
      // so only periodic control ticks pend -- those defer losslessly), or
      // its scheduler literally has nothing to run before the target (the
      // dispatch would be a bare clock move). Both require zero pressure:
      // a zero-pressure sector's headroom grant computes to 0 whatever the
      // others do, so the coordinator never mutates a lagging clock.
      const bool idle = slot.active == 0;
      const bool no_event_due = slot.next_event > target;
      const bool quiescent = config.elide_quiescent && !crossing &&
                             !sec.grant_changed && slot.pressure == 0.0 &&
                             arrivals_quiet && (idle || no_event_due);
      if (quiescent) {
        // Frozen by definition; the stale flag from the sector's last
        // dispatched round must not re-dirty the grant pass.
        slot.pressure_changed = false;
      } else {
        active_idx.push_back(s);
      }
    }
    result.sectors_dispatched += active_idx.size();
    result.sectors_elided += n - active_idx.size();

    Clock::time_point c1 = Clock::now();
    runner.run_round(std::span<const std::size_t>(active_idx),
                     [&](std::size_t s) { advance(s, target); });
    Clock::time_point c2 = Clock::now();
    ++result.barrier_rounds;

    // Serial coordinator, fixed sector order: fold the slots (the same
    // arithmetic, in the same order, as reading each sector directly),
    // then grant the headroom pool to sectors in proportion to their
    // access-link pressure -- but only when some sector's pressure moved;
    // otherwise every grant would recompute to itself.
    double total_pressure = 0.0;
    std::size_t concurrent = 0;
    bool dirty = false;
    for (std::size_t s = 0; s < n; ++s) {
      concurrent += slots[s].active;
      total_pressure += slots[s].pressure;
      dirty |= slots[s].pressure_changed;
    }
    result.peak_concurrent = std::max(result.peak_concurrent, concurrent);
    if (dirty) {
      for (std::size_t s = 0; s < n; ++s) {
        Sector& sec = *sectors[s];
        double grant = total_pressure > 0.0
                           ? headroom_pool * slots[s].pressure / total_pressure
                           : 0.0;
        sec.grant_changed = grant != sec.grant;
        if (!sec.grant_changed) continue;
        sec.grant = grant;
        ++result.reallocations;
        sec.world->network().set_link_capacity(
            sec.access, config.access_capacity + grant);
      }
    } else {
      for (std::size_t s = 0; s < n; ++s) sectors[s]->grant_changed = false;
    }
    Clock::time_point c3 = Clock::now();
    advance_ns += ns_between(c1, c2);
    barrier_ns += ns_between(c0, c1) + ns_between(c2, c3);
    if (target >= config.run_duration) break;
  }

  // Drain: abort the survivors (final beacons fire), let the deferred
  // teardown sweep run, and close the books. Every sector runs here --
  // elided sectors catch their clocks up, firing their deferred periodic
  // ticks in order -- so the drain parallelises like any other round.
  Clock::time_point d0 = Clock::now();
  runner.run_round(n, [&](std::size_t s) {
    Sector& sec = *sectors[s];
    sec.arrivals.reset();
    sec.pool->abort_all();
    sec.world->sched().run_until(config.run_duration + 1.0);
    sec.world->auditor().finalize();
  });
  result.sectors_dispatched += n;
  advance_ns += ns_between(d0, Clock::now());

  std::vector<app::SessionSummary> all;
  all.reserve(config.sessions);
  for (std::size_t s = 0; s < n; ++s) {
    Sector& sec = *sectors[s];
    result.per_sector[s] = QoeSummary::from(sec.pool->summaries());
    all.insert(all.end(), sec.pool->summaries().begin(),
               sec.pool->summaries().end());
    result.events += sec.world->sched().events_fired();
    result.arrivals += sec.spawned;
  }
  result.qoe = QoeSummary::from(all);
  if (config.perf != nullptr) {
    config.perf->events += result.events;
    config.perf->barrier_rounds += result.barrier_rounds;
    config.perf->sectors_dispatched += result.sectors_dispatched;
    config.perf->sectors_elided += result.sectors_elided;
    config.perf->parallel_advance_ns += advance_ns;
    config.perf->serial_barrier_ns += barrier_ns;
  }
  return result;
}

}  // namespace eona::scenarios
