#include "scenarios/scale.hpp"

#include <algorithm>
#include <memory>
#include <optional>

#include "app/content_catalog.hpp"
#include "app/video_player.hpp"
#include "app/workload.hpp"
#include "scenarios/world.hpp"
#include "sim/sector.hpp"

namespace eona::scenarios {
namespace {

/// One ISP x CDN-region cell: a full mini world plus its workload state.
/// Everything here is private to the sector between barriers, so worker
/// threads can advance different sectors concurrently.
struct Sector {
  std::unique_ptr<sim::World> world;
  app::SessionPool* pool = nullptr;
  control::AppPController* appp = nullptr;
  app::PlayerBrain* brain = nullptr;
  NodeId client;
  IspId isp{0};
  LinkId access;
  std::optional<sim::Rng> content_rng;
  std::optional<app::PoissonArrivals> arrivals;
  std::size_t quota = 0;    ///< sessions this sector must admit, exact
  std::size_t spawned = 0;  ///< sessions admitted so far
  SessionId::rep_type next_session = 0;
  bool window_closed = false;
  double grant = 0.0;  ///< current backbone headroom grant (bps)
};

void spawn_session(Sector& sec) {
  SessionId session(sec.next_session++);
  telemetry::Dimensions dims;
  dims.isp = sec.isp;
  app::ContentCatalog& catalog = sec.world->catalog();
  ContentId content = catalog.sample(*sec.content_rng);
  sec.pool->spawn_player(sec.world->sched(), sec.world->transfers(),
                         sec.world->network(), sec.world->routing(),
                         sec.world->directory(), *sec.brain,
                         &sec.appp->collector(), app::PlayerConfig{}, session,
                         dims, sec.client, catalog.item(content),
                         qoe::EngagementModel{});
  ++sec.spawned;
}

/// Assemble one sector world -- the quickstart wiring, seeded from a salted
/// fork of the experiment seed so sectors draw independent streams.
std::unique_ptr<Sector> make_sector(const ScaleConfig& config,
                                    std::uint64_t sector_seed,
                                    std::size_t quota) {
  auto sec = std::make_unique<Sector>();
  sim::World::Builder b(sector_seed);
  b.add_isp_bottleneck(config.access_capacity);
  b.with_catalog(16, config.video_duration);
  sim::World::Builder::CdnSpec cdn_spec;
  cdn_spec.warm = true;
  b.add_cdn("cdn", cdn_spec);
  b.build_network(sec->isp);

  control::AppPController& appp = b.add_appp("video-appp");
  control::InfPController& infp =
      b.add_infp("access-isp", sec->isp, {b.access_link()});
  b.wire_eona();
  const bool eona = config.mode != ControlMode::kBaseline;
  appp.set_eona_enabled(eona);
  infp.set_eona_enabled(eona);
  appp.start();
  infp.start();
  control::OracleBrain& oracle = b.add_oracle();

  sec->pool = &b.add_session_pool();
  sec->appp = &appp;
  sec->brain = (config.mode == ControlMode::kOracle)
                   ? static_cast<app::PlayerBrain*>(&oracle)
                   : &appp.brain();
  sec->client = b.client();
  sec->access = b.access_link();
  sec->world = b.build();
  sec->content_rng.emplace(sec->world->rng().fork());
  sec->quota = quota;

  // Pre-size the pool for the expected concurrency (admission rate x video
  // duration, doubled for burst slack) -- steady churn then never allocates.
  Duration window = config.run_duration - config.video_duration;
  auto concurrent = static_cast<std::size_t>(
      static_cast<double>(quota) * config.video_duration / window);
  sec->pool->reserve(std::min(quota, 2 * concurrent + 8));
  return sec;
}

}  // namespace

ScaleResult run_scale(const ScaleConfig& config) {
  EONA_EXPECTS(config.sectors >= 1);
  EONA_EXPECTS(config.threads >= 1);
  EONA_EXPECTS(config.barrier_period > 0.0);
  EONA_EXPECTS(config.video_duration > 0.0);
  EONA_EXPECTS(config.run_duration > config.video_duration);

  const Duration window = config.run_duration - config.video_duration;
  const std::size_t n = config.sectors;
  sim::Rng root(config.seed);

  std::vector<std::unique_ptr<Sector>> sectors;
  sectors.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    std::size_t quota =
        config.sessions / n + (s < config.sessions % n ? 1 : 0);
    sectors.push_back(
        make_sector(config, root.fork_salted(s).seed(), quota));
  }

  // Arrival processes: per-sector Poisson at quota/window (flat) or a
  // raised-cosine diurnal profile with the same mean, capped at the quota.
  for (auto& sec_ptr : sectors) {
    Sector& sec = *sec_ptr;
    double rate = static_cast<double>(sec.quota) / window;
    std::vector<app::ArrivalPhase> phases =
        config.diurnal
            ? app::diurnal_phases(0.5 * rate, 1.5 * rate, window, 8, window)
            : std::vector<app::ArrivalPhase>{{0.0, rate}};
    sec.arrivals.emplace(sec.world->sched(), sec.world->rng().fork(),
                         std::move(phases), window, [&sec] {
                           if (sec.spawned < sec.quota) spawn_session(sec);
                         });
  }

  // Barrier loop: advance every sector to the next coupling point (workers
  // touch disjoint sectors), then serially rebalance backbone headroom.
  sim::SectorRunner runner(config.threads);
  ScaleResult result;
  result.per_sector.resize(n);
  const double headroom_pool = config.headroom_fraction *
                               config.access_capacity *
                               static_cast<double>(n);
  constexpr double kPressureThreshold = 0.9;

  auto advance = [&](std::size_t s, TimePoint target) {
    Sector& sec = *sectors[s];
    sec.world->sched().run_until(target);
    if (!sec.window_closed && target >= window) {
      // The arrival window is over: stop the process and top up any Poisson
      // shortfall so the sector admits exactly its quota.
      sec.window_closed = true;
      sec.arrivals.reset();
      while (sec.spawned < sec.quota) spawn_session(sec);
    }
  };

  std::vector<double> pressure(n, 0.0);
  for (TimePoint target = config.barrier_period;;
       target += config.barrier_period) {
    target = std::min(target, config.run_duration);
    runner.run_round(n, [&](std::size_t s) { advance(s, target); });
    ++result.barrier_rounds;

    // Serial coordinator, fixed sector order: grant the headroom pool to
    // sectors in proportion to their access-link pressure.
    double total_pressure = 0.0;
    std::size_t concurrent = 0;
    for (std::size_t s = 0; s < n; ++s) {
      Sector& sec = *sectors[s];
      concurrent += sec.pool->active_count();
      pressure[s] = std::max(
          0.0, sec.world->network().link_utilization(sec.access) -
                   kPressureThreshold);
      total_pressure += pressure[s];
    }
    result.peak_concurrent = std::max(result.peak_concurrent, concurrent);
    for (std::size_t s = 0; s < n; ++s) {
      Sector& sec = *sectors[s];
      double grant = total_pressure > 0.0
                         ? headroom_pool * pressure[s] / total_pressure
                         : 0.0;
      if (grant == sec.grant) continue;
      sec.grant = grant;
      ++result.reallocations;
      sec.world->network().set_link_capacity(sec.access,
                                             config.access_capacity + grant);
    }
    if (target >= config.run_duration) break;
  }

  // Drain: abort the survivors (final beacons fire), let the deferred
  // teardown sweep run, and close the books. Sectors stay independent, so
  // the drain parallelises like any other round.
  runner.run_round(n, [&](std::size_t s) {
    Sector& sec = *sectors[s];
    sec.arrivals.reset();
    sec.pool->abort_all();
    sec.world->sched().run_until(config.run_duration + 1.0);
    sec.world->auditor().finalize();
  });

  std::vector<app::SessionSummary> all;
  all.reserve(config.sessions);
  for (std::size_t s = 0; s < n; ++s) {
    Sector& sec = *sectors[s];
    result.per_sector[s] = QoeSummary::from(sec.pool->summaries());
    all.insert(all.end(), sec.pool->summaries().begin(),
               sec.pool->summaries().end());
    result.events += sec.world->sched().events_fired();
    result.arrivals += sec.spawned;
  }
  result.qoe = QoeSummary::from(all);
  if (config.perf != nullptr) config.perf->events += result.events;
  return result;
}

}  // namespace eona::scenarios
