// sim::World -- the composition root every scenario builds its ecosystem
// through. One World owns the full vertical slice of a wired simulation:
// the deterministic spine (Scheduler, Rng, EventBus with its always-on
// MetricsRegistry and console LogSink), the data plane (Topology, Network,
// TransferManager, Routing, PeeringBook), the delivery ecosystem (content
// catalog, CDNs, directory), the control planes (ProviderRegistry, AppP /
// InfP / EnergyManager controllers, the oracle brain), and the workload's
// SessionPools. Members are declared in dependency order, so destruction
// runs leaf-first (pools before controllers before the network before the
// scheduler) without any scenario-side ceremony.
//
// Construction goes through World::Builder, whose methods EXECUTE
// IMMEDIATELY in call order -- the builder is a fluent veneer, not a
// deferred plan. That is the determinism contract: a scenario's sequence of
// rng forks and scheduler posts is exactly the textual order of its builder
// calls, so the refactored scenarios reproduce their pre-World output
// byte-for-byte and the JSONL trace is bit-identical run-to-run (pinned by
// tests/trace_determinism_test.cpp).
//
// Everything the builder creates is wired to the World's EventBus at birth:
// the network emits saturation/recompute events, controllers emit steering
// and migration decisions with attributed reasons and route their
// delivery-health accumulators through ReportServedEvents, report channels
// emit publish/drop/delivery, session pools emit lifecycle events. A
// TraceWriter attached via attach_trace() sees all of it as JSONL.
//
// The class lives in namespace eona::sim (it completes the simulation
// spine's vocabulary) but is compiled in the scenarios layer -- the one
// place allowed to depend on every subsystem it composes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "app/cdn.hpp"
#include "app/content_catalog.hpp"
#include "app/session_pool.hpp"
#include "common/contracts.hpp"
#include "control/appp.hpp"
#include "control/energy.hpp"
#include "control/infp.hpp"
#include "control/oracle.hpp"
#include "eona/exchange.hpp"
#include "eona/registry.hpp"
#include "net/network.hpp"
#include "net/peering.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "net/transfer.hpp"
#include "scenarios/auditor.hpp"
#include "scenarios/common.hpp"
#include "sim/event_bus.hpp"
#include "sim/logging.hpp"
#include "sim/metrics_registry.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"
#include "telemetry/column_store.hpp"
#include "telemetry/store_recorder.hpp"

namespace eona::sim {

/// Composition root of one wired simulation; see file header.
class World {
 public:
  class Builder;

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  // --- simulation spine ---
  [[nodiscard]] Scheduler& sched() { return sched_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] EventBus& bus() { return bus_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

  // --- data plane (valid after Builder::build_network()) ---
  [[nodiscard]] net::Topology& topology() { return topo_; }
  [[nodiscard]] net::Network& network() { return *network_; }
  [[nodiscard]] net::TransferManager& transfers() { return *transfers_; }
  [[nodiscard]] const net::Routing& routing() const { return *routing_; }
  [[nodiscard]] net::PeeringBook& peering() { return *peering_; }

  /// Always-on conservation checker (valid after build_network()); scenario
  /// runners call auditor().finalize() once their scheduler drains.
  [[nodiscard]] InvariantAuditor& auditor() { return *auditor_; }

  // --- delivery ecosystem ---
  [[nodiscard]] app::ContentCatalog& catalog() { return *catalog_; }
  [[nodiscard]] app::Cdn& cdn(std::size_t i = 0) { return *cdns_.at(i); }
  [[nodiscard]] std::size_t cdn_count() const { return cdns_.size(); }
  [[nodiscard]] app::CdnDirectory& directory() { return directory_; }

  // --- control planes ---
  [[nodiscard]] core::ProviderRegistry& registry() { return registry_; }
  /// The brokered interface plane (valid after Builder::add_exchange()).
  [[nodiscard]] core::Exchange& exchange() { return *exchange_; }
  [[nodiscard]] bool has_exchange() const { return exchange_ != nullptr; }
  [[nodiscard]] control::AppPController& appp(std::size_t i = 0) {
    return *appps_.at(i);
  }
  [[nodiscard]] std::size_t appp_count() const { return appps_.size(); }
  [[nodiscard]] bool has_infp() const { return !infps_.empty(); }
  [[nodiscard]] control::InfPController& infp(std::size_t i = 0) {
    return *infps_.at(i);
  }
  [[nodiscard]] std::size_t infp_count() const { return infps_.size(); }
  [[nodiscard]] control::EnergyManager& energy() { return *energy_; }
  [[nodiscard]] control::OracleBrain& oracle() { return *oracle_; }

  // --- workload ---
  [[nodiscard]] app::SessionPool& pool(std::size_t i = 0) {
    return *pools_.at(i);
  }

  /// The telemetry store attached via Builder::attach_store (nullptr when
  /// none): every mapped bus event lands in it as queryable rows.
  [[nodiscard]] telemetry::ColumnStore* store() { return store_; }

  // --- mid-run tenant churn (valid on the built world) ---
  //
  // The broker's opt-in registration model makes tenancy dynamic: tenants
  // join, wire, and unwire while the scheduler runs. Every hook re-checks
  // the exchange invariants through the auditor, and joins renormalize the
  // egress-quota shares so they keep summing to 1 across churn. Departing
  // tenants are unwired (their legs retire) but never unregistered while
  // their controller object lives -- a departed tenant simply goes idle.

  /// Register + construct + bind a new AppP tenant mid-run. `quota` is the
  /// joiner's egress share *before* renormalization.
  control::AppPController& churn_add_appp(const std::string& name,
                                          control::AppPConfig config = {},
                                          core::TenantQuota quota = {}) {
    EONA_EXPECTS(exchange_ != nullptr && network_ != nullptr);
    ProviderId id =
        registry_.register_provider(core::ProviderKind::kAppP, name);
    exchange_->register_appp(id, quota);
    exchange_->renormalize_quotas();
    appps_.push_back(std::make_unique<control::AppPController>(
        sched_, *network_, directory_, id, config));
    appps_.back()->bind_exchange(
        core::ExchangeEndpoint(exchange_.get(), id));
    appps_.back()->set_event_bus(&bus_);
    if (auditor_ != nullptr) auditor_->check_exchange();
    return *appps_.back();
  }

  /// Register + construct + bind a new InfP tenant mid-run.
  control::InfPController& churn_add_infp(const std::string& name, IspId isp,
                                          std::vector<LinkId> access_links,
                                          control::InfPConfig config = {}) {
    EONA_EXPECTS(exchange_ != nullptr && network_ != nullptr);
    ProviderId id =
        registry_.register_provider(core::ProviderKind::kInfP, name);
    exchange_->register_infp(id);
    infps_.push_back(std::make_unique<control::InfPController>(
        sched_, *network_, *routing_, *peering_, isp, id,
        std::move(access_links), config));
    infps_.back()->bind_exchange(
        core::ExchangeEndpoint(exchange_.get(), id));
    infps_.back()->set_event_bus(&bus_);
    if (auditor_ != nullptr) auditor_->check_exchange();
    return *infps_.back();
  }

  /// Wire a tenant pair mid-run (same leg/subscription order as the
  /// builder's wire_tenant).
  void churn_wire(std::size_t appp_idx, std::size_t infp_idx,
                  const core::TenantLink& link = {}) {
    control::AppPController& appp = *appps_.at(appp_idx);
    control::InfPController& infp = *infps_.at(infp_idx);
    exchange_->wire(appp.id(), infp.id(), link);
    infp.subscribe_a2i(appp.id());
    appp.subscribe_i2a(infp.id());
    if (auditor_ != nullptr) auditor_->check_exchange();
  }

  /// Sever a tenant pair mid-run: both controllers drop their
  /// subscriptions, then the broker retires both legs and the durable link
  /// record (a later broker restart will NOT resurrect this pairing).
  void churn_unwire(std::size_t appp_idx, std::size_t infp_idx) {
    control::AppPController& appp = *appps_.at(appp_idx);
    control::InfPController& infp = *infps_.at(infp_idx);
    appp.unsubscribe_i2a(infp.id());
    infp.unsubscribe_a2i(appp.id());
    exchange_->unwire(appp.id(), infp.id());
    if (auditor_ != nullptr) auditor_->check_exchange();
  }

 private:
  friend class Builder;
  explicit World(std::uint64_t seed) : rng_(seed) {
    metrics_.subscribe_all(bus_);
    log_sink_.subscribe_all(bus_);
  }

  Scheduler sched_;
  Rng rng_;
  EventBus bus_;
  MetricsRegistry metrics_;
  LogSink log_sink_;
  net::Topology topo_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<net::TransferManager> transfers_;
  std::unique_ptr<net::Routing> routing_;
  std::unique_ptr<net::PeeringBook> peering_;
  std::unique_ptr<InvariantAuditor> auditor_;
  std::optional<app::ContentCatalog> catalog_;
  std::vector<std::unique_ptr<app::Cdn>> cdns_;
  app::CdnDirectory directory_;
  core::ProviderRegistry registry_;
  std::unique_ptr<core::Exchange> exchange_;
  std::vector<std::unique_ptr<control::AppPController>> appps_;
  std::vector<std::unique_ptr<control::InfPController>> infps_;
  std::unique_ptr<control::EnergyManager> energy_;
  std::unique_ptr<control::OracleBrain> oracle_;
  std::vector<std::unique_ptr<app::SessionPool>> pools_;
  telemetry::ColumnStore* store_ = nullptr;
  std::unique_ptr<telemetry::StoreRecorder> store_recorder_;
};

/// Fluent, immediate-mode builder; see the file header for the determinism
/// contract. Bespoke scenarios mix the conveniences below with raw access
/// (topology(), rng(), sched()) -- both execute in call order. build()
/// releases the World; the builder must not be touched afterwards.
class World::Builder {
 public:
  explicit Builder(std::uint64_t seed) : world_(new World(seed)) {}

  // --- raw access during building ---
  [[nodiscard]] World& world() { return *world_; }
  [[nodiscard]] Scheduler& sched() { return world_->sched_; }
  [[nodiscard]] Rng& rng() { return world_->rng_; }
  [[nodiscard]] EventBus& bus() { return world_->bus_; }
  [[nodiscard]] net::Topology& topology() { return world_->topo_; }

  /// Subscribe `trace` (may be null: no-op) to the world's bus. Call before
  /// the topology is frozen so the trace sees every event.
  Builder& attach_trace(TraceWriter* trace) {
    if (trace != nullptr) trace->subscribe_all(world_->bus_);
    return *this;
  }

  /// Subscribe a telemetry store (may be null: no-op) to the world's bus
  /// via a StoreRecorder the World owns. Call right after attach_trace so
  /// the store ingests the same event stream the trace records -- that is
  /// what makes live stores and --trace replays byte-identical.
  Builder& attach_store(telemetry::ColumnStore* store) {
    if (store != nullptr) {
      world_->store_ = store;
      world_->store_recorder_ =
          std::make_unique<telemetry::StoreRecorder>(*store);
      world_->store_recorder_->subscribe_all(world_->bus_);
    }
    return *this;
  }

  // --- topology conveniences (before build_network) ---

  /// Client POP and ISP edge router joined by the shared access link -- the
  /// bottleneck every EONA story starts from.
  Builder& add_isp_bottleneck(BitsPerSecond capacity,
                              Duration delay = milliseconds(5)) {
    EONA_EXPECTS(!has_access_);
    client_ = world_->topo_.add_node(net::NodeKind::kClientPop, "clients");
    edge_ = world_->topo_.add_node(net::NodeKind::kRouter, "isp-edge");
    access_ = world_->topo_.add_link(edge_, client_, capacity, delay);
    has_access_ = true;
    return *this;
  }

  [[nodiscard]] NodeId client() const {
    EONA_EXPECTS(has_access_);
    return client_;
  }
  [[nodiscard]] NodeId edge() const {
    EONA_EXPECTS(has_access_);
    return edge_;
  }
  [[nodiscard]] LinkId access_link() const {
    EONA_EXPECTS(has_access_);
    return access_;
  }

  /// Zipf-popularity video catalog shared by every CDN.
  Builder& with_catalog(std::size_t items, Duration video_duration,
                        double skew = 0.8) {
    world_->catalog_.emplace(
        app::ContentCatalog::videos(items, video_duration, skew));
    return *this;
  }

  /// One-server CDN behind the edge: server + origin nodes, a peering link
  /// registered with the ISP, and (optionally) the whole catalog warmed.
  /// Topology edits happen now; the app::Cdn object and its PeeringBook
  /// entry materialise inside build_network() once those layers exist.
  struct CdnSpec {
    BitsPerSecond peer_capacity = gbps(1);
    Duration peer_delay = milliseconds(8);
    BitsPerSecond origin_capacity = mbps(100);
    Duration origin_delay = milliseconds(20);
    std::size_t cache_capacity = 32;
    bool warm = false;  ///< pre-seed the server cache with the full catalog
  };
  Builder& add_cdn(const std::string& name) { return add_cdn(name, CdnSpec{}); }
  Builder& add_cdn(const std::string& name, CdnSpec spec) {
    EONA_EXPECTS(has_access_);
    EONA_EXPECTS(world_->network_ == nullptr);
    PendingCdn pending;
    pending.name = name;
    pending.spec = spec;
    pending.server = world_->topo_.add_node(net::NodeKind::kCdnServer,
                                            name + "-srv");
    pending.origin = world_->topo_.add_node(net::NodeKind::kOrigin,
                                            name + "-origin");
    pending.peer_link = world_->topo_.add_link(
        pending.server, edge_, spec.peer_capacity, spec.peer_delay,
        name + "@edge");
    world_->topo_.add_link(pending.origin, pending.server,
                           spec.origin_capacity, spec.origin_delay);
    pending_cdns_.push_back(std::move(pending));
    return *this;
  }

  // --- networking ---

  /// Freeze the topology: construct Network / TransferManager / Routing /
  /// PeeringBook, wire the network to the event bus, and materialise any
  /// CDNs declared with the add_cdn(name, spec) convenience.
  Builder& build_network(IspId isp = IspId(0)) {
    EONA_EXPECTS(world_->network_ == nullptr);
    World& w = *world_;
    w.network_ = std::make_unique<net::Network>(w.topo_);
    w.transfers_ =
        std::make_unique<net::TransferManager>(w.sched_, *w.network_);
    w.routing_ = std::make_unique<net::Routing>(w.topo_);
    w.peering_ = std::make_unique<net::PeeringBook>(w.topo_);
    w.network_->set_event_bus(&w.bus_, &w.sched_);
    // Failure semantics wiring: routing answers failure-aware queries
    // against the network's live link-state overlay, aborted transfers are
    // published on the bus, and the always-on auditor checks conservation
    // invariants on every rate recompute.
    w.routing_->attach_link_state(w.network_.get());
    w.transfers_->set_event_bus(&w.bus_);
    w.auditor_ = std::make_unique<InvariantAuditor>(w.bus_, *w.network_);
    if (w.exchange_ != nullptr) w.auditor_->watch_exchange(w.exchange_.get());
    for (PendingCdn& pending : pending_cdns_) {
      app::Cdn& cdn = add_cdn_at(pending.name, pending.origin);
      ServerId server = cdn.add_server(pending.server, pending.peer_link,
                                       pending.spec.cache_capacity);
      w.peering_->add(isp, cdn.id(), pending.peer_link,
                      pending.name + "@edge");
      cdn.set_peering_book(w.peering_.get());
      if (pending.spec.warm) {
        EONA_EXPECTS(w.catalog_.has_value());
        std::vector<ContentId> all;
        for (std::size_t i = 0; i < w.catalog_->size(); ++i)
          all.push_back(ContentId(static_cast<ContentId::rep_type>(i)));
        cdn.warm_cache(server, all);
      }
    }
    pending_cdns_.clear();
    return *this;
  }

  /// Low-level CDN: the scenario owns server placement, peering entries and
  /// cache warming through the returned reference. Ids are assigned in
  /// declaration order; the directory registers them in the same order.
  app::Cdn& add_cdn_at(const std::string& name, NodeId origin) {
    World& w = *world_;
    CdnId id(static_cast<CdnId::rep_type>(w.cdns_.size()));
    w.cdns_.push_back(std::make_unique<app::Cdn>(id, name, origin));
    w.directory_.add(w.cdns_.back().get());
    return *w.cdns_.back();
  }

  // --- control planes (register + construct + wire to the bus, in call
  // order, so provider ids follow declaration order exactly) ---

  /// The brokered interface plane every controller enrolls with. Must be
  /// called before the first add_appp/add_infp so their tenancies register
  /// at construction.
  Builder& add_exchange() {
    World& w = *world_;
    EONA_EXPECTS(w.exchange_ == nullptr);
    EONA_EXPECTS(w.appps_.empty() && w.infps_.empty());
    w.exchange_ = std::make_unique<core::Exchange>(w.registry_);
    w.exchange_->set_event_bus(&w.bus_);
    // Either call order works: build_network() hooks the auditor up when
    // the exchange already exists, and vice versa.
    if (w.auditor_ != nullptr) w.auditor_->watch_exchange(w.exchange_.get());
    return *this;
  }

  control::AppPController& add_appp(const std::string& name,
                                    control::AppPConfig config = {}) {
    World& w = *world_;
    EONA_EXPECTS(w.exchange_ != nullptr);
    ProviderId id = w.registry_.register_provider(core::ProviderKind::kAppP,
                                                  name);
    w.exchange_->register_appp(id);
    w.appps_.push_back(std::make_unique<control::AppPController>(
        w.sched_, *w.network_, w.directory_, id, config));
    w.appps_.back()->bind_exchange(
        core::ExchangeEndpoint(w.exchange_.get(), id));
    w.appps_.back()->set_event_bus(&w.bus_);
    return *w.appps_.back();
  }

  control::InfPController& add_infp(const std::string& name, IspId isp,
                                    std::vector<LinkId> access_links,
                                    control::InfPConfig config = {}) {
    World& w = *world_;
    EONA_EXPECTS(w.exchange_ != nullptr);
    ProviderId id = w.registry_.register_provider(core::ProviderKind::kInfP,
                                                  name);
    w.exchange_->register_infp(id);
    w.infps_.push_back(std::make_unique<control::InfPController>(
        w.sched_, *w.network_, *w.routing_, *w.peering_, isp, id,
        std::move(access_links), config));
    w.infps_.back()->bind_exchange(
        core::ExchangeEndpoint(w.exchange_.get(), id));
    w.infps_.back()->set_event_bus(&w.bus_);
    return *w.infps_.back();
  }

  control::EnergyManager& add_energy(const std::string& name, app::Cdn& cdn,
                                     control::EnergyConfig config = {}) {
    World& w = *world_;
    EONA_EXPECTS(w.energy_ == nullptr);
    ProviderId id = w.registry_.register_provider(core::ProviderKind::kInfP,
                                                  name);
    w.energy_ = std::make_unique<control::EnergyManager>(
        w.sched_, *w.network_, cdn, id, config);
    return *w.energy_;
  }

  /// The hypothetical fully-informed global controller's player brain.
  control::OracleBrain& add_oracle() {
    World& w = *world_;
    EONA_EXPECTS(w.oracle_ == nullptr);
    w.oracle_ = std::make_unique<control::OracleBrain>(
        *w.network_, *w.routing_, w.directory_);
    return *w.oracle_;
  }

  /// Wire both EONA directions between one AppP and one InfP tenant through
  /// the exchange: the broker mints both bearer tokens and opens both legs
  /// (applying the link's trust level, faults, and I2A rate budget), then
  /// each controller subscribes its consuming side. Channel-creation and
  /// subscription order matches the pre-broker point-to-point wiring.
  Builder& wire_tenant(std::size_t appp_idx = 0, std::size_t infp_idx = 0,
                       const core::TenantLink& link = {}) {
    World& w = *world_;
    control::AppPController& appp = *w.appps_.at(appp_idx);
    control::InfPController& infp = *w.infps_.at(infp_idx);
    w.exchange_->wire(appp.id(), infp.id(), link);
    infp.subscribe_a2i(appp.id());
    appp.subscribe_i2a(infp.id());
    return *this;
  }

  /// Authorise the energy manager on an AppP tenant's A2I glass (an
  /// InfP-side auxiliary consumer of the exchange).
  Builder& wire_energy_a2i(Duration a2i_delay = 0.0,
                           core::A2IPolicy policy = {},
                           std::size_t which = 0) {
    World& w = *world_;
    control::AppPController& appp = *w.appps_.at(which);
    core::A2IEndpoint& glass = w.exchange_->a2i_glass(appp.id());
    std::string token = w.registry_.mint_token(appp.id(), w.energy_->id());
    glass.authorize(w.energy_->id(), token, policy, a2i_delay);
    w.energy_->subscribe_a2i(&glass, token);
    return *this;
  }

  // --- workload ---

  /// A session pool wired to the bus (start/stall/finish events).
  app::SessionPool& add_session_pool() {
    World& w = *world_;
    w.pools_.push_back(
        std::make_unique<app::SessionPool>(w.sched_, w.network_.get()));
    w.pools_.back()->set_event_bus(&w.bus_);
    return *w.pools_.back();
  }

  /// Release the finished World. The builder is spent afterwards.
  [[nodiscard]] std::unique_ptr<World> build() {
    EONA_EXPECTS(world_ != nullptr);
    EONA_EXPECTS(pending_cdns_.empty());  // declared CDNs need build_network
    return std::move(world_);
  }

 private:
  struct PendingCdn {
    std::string name;
    CdnSpec spec;
    NodeId server;
    NodeId origin;
    LinkId peer_link;
  };

  std::unique_ptr<World> world_;
  std::vector<PendingCdn> pending_cdns_;
  NodeId client_{};
  NodeId edge_{};
  LinkId access_{};
  bool has_access_ = false;
};

}  // namespace eona::sim
