// Run-scenario-by-name: the shared layer under the eona_lab CLI and the
// sweep runner.
//
// Every scenario harness (flashcrowd, oscillation, ...) has a config
// struct, a run function, and a result struct; this file maps a scenario
// *name* plus string key=value overrides onto that triple and renders the
// result as the stable JSON object eona_lab has always printed. Keeping the
// mapping here means a sweep job and a CLI invocation with the same
// overrides produce byte-identical JSON.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "eona/json.hpp"
#include "scenarios/common.hpp"
#include "sim/timeseries.hpp"
#include "telemetry/column_store.hpp"

namespace eona::scenarios {

/// Typed override helpers: consume recognised keys, complain about leftovers.
class Overrides {
 public:
  explicit Overrides(std::map<std::string, std::string> kv)
      : kv_(std::move(kv)) {}

  void number(const char* key, double& out);
  void integer(const char* key, std::uint64_t& out);
  void size(const char* key, std::size_t& out);
  void boolean(const char* key, bool& out);
  void mode(const char* key, ControlMode& out);
  void text(const char* key, std::string& out);
  /// Throws ConfigError when unconsumed keys remain.
  void finish() const;

 private:
  std::map<std::string, std::string> kv_;
};

/// Scenario names run_scenario_json accepts (usage/help text order).
[[nodiscard]] const std::vector<std::string>& scenario_names();

/// Run `scenario` with the given overrides and return its result JSON
/// (exactly what eona_lab prints). Unknown scenarios or override keys throw
/// ConfigError. When `series_out` is non-null, scenarios that record time
/// series copy them there (for CSV dumps); others leave it empty. When
/// `trace` is non-null it is attached to the run's event bus and accumulates
/// the JSONL event trace (eona_lab --trace=FILE). When `store` is non-null
/// the run's event stream is additionally ingested into it as queryable
/// rows (eona_lab --store=FILE). When `perf` is non-null the scenario
/// accumulates its run-cost counters there (eona_lab --perf).
[[nodiscard]] core::JsonValue run_scenario_json(
    const std::string& scenario,
    const std::map<std::string, std::string>& overrides,
    sim::MetricSet* series_out = nullptr,
    sim::TraceWriter* trace = nullptr,
    telemetry::ColumnStore* store = nullptr,
    RunPerf* perf = nullptr);

}  // namespace eona::scenarios
