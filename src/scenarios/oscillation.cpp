#include "scenarios/oscillation.hpp"

#include "app/content_catalog.hpp"
#include "app/video_player.hpp"
#include "app/workload.hpp"
#include "control/oscillation.hpp"
#include "scenarios/chaos.hpp"
#include "scenarios/world.hpp"

namespace eona::scenarios {

OscillationResult run_oscillation(const OscillationConfig& config) {
  sim::World::Builder b(config.seed);
  b.attach_trace(config.trace);
  b.attach_store(config.store);

  // --- topology: Fig 5 -------------------------------------------------------
  b.add_isp_bottleneck(gbps(1));
  net::Topology& topo = b.topology();
  NodeId client = b.client();
  NodeId edge = b.edge();
  NodeId srv_x = topo.add_node(net::NodeKind::kCdnServer, "cdnX-srv");
  NodeId srv_y = topo.add_node(net::NodeKind::kCdnServer, "cdnY-srv");
  NodeId origin_x = topo.add_node(net::NodeKind::kOrigin, "cdnX-origin");
  NodeId origin_y = topo.add_node(net::NodeKind::kOrigin, "cdnY-origin");

  // Two parallel interconnects for X: local B (cheap, small) and IXP C.
  LinkId x_at_b =
      topo.add_link(srv_x, edge, config.capacity_b, milliseconds(3), "X@B");
  LinkId x_at_c =
      topo.add_link(srv_x, edge, config.capacity_cx, milliseconds(12), "X@C");
  LinkId y_at_c =
      topo.add_link(srv_y, edge, config.capacity_cy, milliseconds(12), "Y@C");
  topo.add_link(origin_x, srv_x, mbps(500), milliseconds(15));
  topo.add_link(origin_y, srv_y, mbps(500), milliseconds(15));

  IspId isp(0);
  b.build_network(isp);
  net::PeeringBook& peering = b.world().peering();

  b.with_catalog(24, config.video_duration, 0.8);
  app::ContentCatalog& catalog = b.world().catalog();
  app::Cdn& cdn_x = b.add_cdn_at("cdn-X", origin_x);
  app::Cdn& cdn_y = b.add_cdn_at("cdn-Y", origin_y);
  ServerId sx = cdn_x.add_server(srv_x, x_at_b, 32);  // egress tracked at B
  ServerId sy = cdn_y.add_server(srv_y, y_at_c, 32);
  // Registration order defines the ISP's preference: B first (cheap).
  PeeringId peer_xb = peering.add(isp, cdn_x.id(), x_at_b, "X@B");
  PeeringId peer_xc = peering.add(isp, cdn_x.id(), x_at_c, "X@C");
  peering.add(isp, cdn_y.id(), y_at_c, "Y@C");
  cdn_x.set_peering_book(&peering);
  cdn_y.set_peering_book(&peering);
  {
    std::vector<ContentId> all;
    for (std::size_t i = 0; i < catalog.size(); ++i)
      all.push_back(ContentId(static_cast<ContentId::rep_type>(i)));
    cdn_x.warm_cache(sx, all);
    cdn_y.warm_cache(sy, all);
  }

  // --- control planes ---------------------------------------------------------
  const std::vector<BitsPerSecond> ladder{kbps(300), kbps(700), mbps(1.5),
                                          mbps(3)};
  control::AppPConfig appp_cfg;
  appp_cfg.control_period = config.appp_period;
  appp_cfg.qoe_window = 60.0;
  appp_cfg.bad_qoe_buffering = 0.03;
  appp_cfg.bad_qoe_bitrate = mbps(1.2);  // below this the AppP acts
  appp_cfg.primary_dwell = config.appp_dwell;
  appp_cfg.intended_bitrate = ladder.back();
  b.add_exchange();
  control::AppPController& appp = b.add_appp("video-appp", appp_cfg);

  control::InfPConfig infp_cfg;
  infp_cfg.control_period = config.infp_period;
  infp_cfg.egress_dwell = config.infp_dwell;
  control::InfPController& infp = b.add_infp("access-isp", isp, {}, infp_cfg);

  core::TenantLink link;
  link.a2i_delay = config.a2i_delay;
  link.i2a_delay = config.i2a_delay;
  link.a2i_policy = config.a2i_policy;
  link.i2a_policy = config.i2a_policy;
  b.wire_tenant(0, 0, link);
  // Oracle mode models the hypothetical global controller: the player brain
  // introspects the network directly AND both control planes run fully
  // informed (baseline logic would pollute the upper bound).
  appp.set_eona_enabled(config.mode != ControlMode::kBaseline);
  infp.set_eona_enabled(config.mode != ControlMode::kBaseline);
  appp.start();
  infp.start();

  control::OracleBrain& oracle = b.add_oracle();
  app::PlayerBrain& brain = (config.mode == ControlMode::kOracle)
                                ? static_cast<app::PlayerBrain&>(oracle)
                                : appp.brain();

  // --- workload ---------------------------------------------------------------
  app::SessionPool& pool = b.add_session_pool();
  std::unique_ptr<sim::World> world = b.build();
  auto chaos = sim::schedule_faults(*world, config.faults);
  sim::Scheduler& sched = world->sched();

  SessionId::rep_type next_session = 0;
  sim::Rng content_rng = world->rng().fork();
  app::PlayerConfig player_cfg;
  player_cfg.ladder = ladder;
  auto spawn = [&] {
    SessionId session(next_session++);
    telemetry::Dimensions dims;
    dims.isp = isp;
    ContentId content = catalog.sample(content_rng);
    pool.spawn_player(sched, world->transfers(), world->network(),
                      world->routing(), world->directory(), brain,
                      &appp.collector(), player_cfg, session, dims, client,
                      catalog.item(content), qoe::EngagementModel{});
  };
  app::PoissonArrivals arrivals(
      sched, world->rng().fork(), {{0.0, config.arrival_rate}},
      config.run_duration - config.video_duration, spawn);

  // --- joint-state sampling ------------------------------------------------------
  // Oscillation statistics cover [measure_from, measure_to): the warmup and
  // the end-of-run traffic drain (where returning to the cheap point is
  // correct, not flapping) are excluded.
  const TimePoint measure_to = config.run_duration - config.video_duration;
  if (config.perf != nullptr) {
    config.perf->events += sched.events_fired();
    config.perf->add_exchange(world->exchange());
  }
  OscillationResult result;
  control::CycleDetector detector;
  sim::PeriodicTask sampler(sched, config.infp_period, [&] {
    int primary = static_cast<int>(appp.primary_cdn().value());
    int egress = static_cast<int>(peering.selected(isp, cdn_x.id()).value());
    if (sched.now() < measure_to) detector.observe(primary * 16 + egress);
    result.metrics.series("primary_cdn")
        .record(sched.now(), static_cast<double>(primary));
    result.metrics.series("x_egress")
        .record(sched.now(), static_cast<double>(egress));
    double bitrate = 0.0;
    std::size_t active = 0;
    pool.for_each([&](app::VideoPlayer& p) {
      ++active;
      bitrate += player_cfg.ladder[p.bitrate_index()];
    });
    result.metrics.series("mean_bitrate")
        .record(sched.now(), active == 0 ? 0.0 : bitrate / active);
  });

  // --- run ---------------------------------------------------------------------
  sched.run_until(config.run_duration);
  arrivals.stop();
  pool.abort_all();
  sched.run_until(config.run_duration + 1.0);
  world->auditor().finalize();

  // --- summarise ------------------------------------------------------------------
  result.qoe = QoeSummary::from(pool.summaries());
  const control::DecisionTrace& appp_trace = appp.primary_trace();
  const control::DecisionTrace& infp_trace = infp.egress_trace(cdn_x.id());
  result.appp_switches =
      appp_trace.changes_between(config.measure_from, measure_to);
  result.infp_switches =
      infp_trace.changes_between(config.measure_from, measure_to);
  result.appp_reversals = appp_trace.reversal_count();
  result.infp_reversals = infp_trace.reversal_count();
  result.cycling = detector.cycling();
  result.converged = detector.converged();
  result.settled_at =
      std::max(appp_trace.settled_at(), infp_trace.settled_at());
  // The green path means *settling* on it: converged at the end of the
  // measurement window with primary on X and X entering via the IXP C.
  // A cycling run that merely passes through that state does not count.
  result.green_path =
      result.converged &&
      appp_trace.value_at(measure_to) == static_cast<int>(cdn_x.id().value()) &&
      infp_trace.value_at(measure_to) == static_cast<int>(peer_xc.value());
  (void)peer_xb;
  return result;
}

}  // namespace eona::scenarios
