#include "scenarios/cellular_web.hpp"

#include <cmath>
#include <memory>
#include <unordered_map>
#include <vector>

#include "app/web_session.hpp"
#include "app/workload.hpp"
#include "qoe/inference.hpp"
#include "scenarios/world.hpp"

namespace eona::scenarios {

namespace {

/// Features the InfP can observe passively about one page load -- each
/// corrupted by measurement noise (flow sampling, DPI reassembly, radio
/// counter quantisation). Application-layer facts (object count, think
/// time, the engagement curve) are invisible.
std::vector<double> passive_features(const app::WebSessionOutcome& o,
                                     double noise, sim::Rng& rng) {
  auto jitter = [&](double x) { return x * (1.0 + rng.normal(0.0, noise)); };
  return {jitter(o.rtt), jitter(o.observed_throughput / 1e6),
          jitter(std::log10(o.bytes)), jitter(o.flow_duration)};
}

double mean_of(const std::vector<double>& v) {
  double total = 0.0;
  for (double x : v) total += x;
  return v.empty() ? 0.0 : total / static_cast<double>(v.size());
}

}  // namespace

CellularWebResult run_cellular_web(const CellularWebConfig& config) {
  sim::World::Builder b(config.seed);
  b.attach_trace(config.trace);
  b.attach_store(config.store);

  // --- topology: web server -> cellular core -> sectors ----------------------
  net::Topology& topo = b.topology();
  NodeId server = topo.add_node(net::NodeKind::kOrigin, "web-server");
  NodeId core = topo.add_node(net::NodeKind::kRouter, "cell-core");
  topo.add_link(server, core, gbps(1), milliseconds(12));

  sim::Rng topo_rng = b.rng().fork();
  std::vector<NodeId> sector_nodes;
  std::vector<LinkId> sector_links;
  for (std::size_t s = 0; s < config.sectors; ++s) {
    NodeId node = topo.add_node(net::NodeKind::kClientPop,
                                "sector-" + std::to_string(s));
    // Heterogeneous sector capacities: the quality differences the InfP
    // wants to rank.
    BitsPerSecond cap = mbps(topo_rng.uniform(8.0, 50.0));
    sector_nodes.push_back(node);
    sector_links.push_back(
        topo.add_link(core, node, cap, milliseconds(15)));
  }

  b.build_network();
  std::unique_ptr<sim::World> world = b.build();
  sim::Scheduler& sched = world->sched();
  net::Network& network = world->network();

  // Static background load per sector (other subscribers' traffic), admitted
  // as one batch: a single rate solve for the whole setup burst.
  sim::Rng bg_rng = world->rng().fork();
  {
    net::Network::Batch setup(network);
    for (std::size_t s = 0; s < config.sectors; ++s) {
      auto flows = static_cast<std::size_t>(
          bg_rng.poisson(config.background_flows_per_sector));
      for (std::size_t f = 0; f < flows; ++f) {
        double share = bg_rng.uniform(0.10, 0.30);
        network.add_flow({sector_links[s]},
                         network.link_capacity(sector_links[s]) * share);
      }
    }
  }

  // --- sessions ----------------------------------------------------------------
  std::vector<app::WebSessionOutcome> outcomes;
  std::vector<std::unique_ptr<app::WebSession>> sessions;
  sim::Rng session_rng = world->rng().fork();
  SessionId::rep_type next_session = 0;

  auto spawn = [&] {
    auto sector =
        static_cast<std::size_t>(session_rng.uniform_int(
            0, static_cast<std::int64_t>(config.sectors) - 1));
    app::WebSessionConfig web_cfg;
    web_cfg.objects = static_cast<int>(session_rng.uniform_int(6, 24));
    web_cfg.extra_rtt = session_rng.lognormal(
        std::log(config.radio_rtt_median), config.radio_noise);
    Bits page_bits = session_rng.lognormal(std::log(12e6), 0.5);
    telemetry::Dimensions dims;
    dims.isp = IspId(0);
    dims.region = static_cast<std::uint32_t>(sector);
    auto session = std::make_unique<app::WebSession>(
        sched, world->transfers(), world->routing(), web_cfg,
        SessionId(next_session++), dims, sector_nodes[sector], server,
        page_bits, nullptr,
        [&](const app::WebSessionOutcome& o) { outcomes.push_back(o); });
    session->start();
    sessions.push_back(std::move(session));
  };

  TimePoint arrival_end =
      static_cast<double>(config.sessions) / config.arrival_rate;
  app::PoissonArrivals arrivals(sched, world->rng().fork(),
                                {{0.0, config.arrival_rate}}, arrival_end,
                                spawn);

  sched.run_until(arrival_end + 120.0);
  world->auditor().finalize();
  sched.run_all();  // drain remaining transfers

  // --- evaluation -----------------------------------------------------------------
  if (config.perf != nullptr) config.perf->events += sched.events_fired();
  CellularWebResult result;
  if (outcomes.size() < 20) return result;

  // Label split: the InfP has ground truth for a small instrumented panel.
  sim::Rng split_rng = world->rng().fork();
  sim::Rng feature_rng = world->rng().fork();
  std::vector<bool> labeled(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i)
    labeled[i] = split_rng.bernoulli(config.labeled_fraction);

  // The InfP observes each session once; precompute its (noisy) view.
  std::vector<std::vector<double>> features(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i)
    features[i] =
        passive_features(outcomes[i], config.feature_noise, feature_rng);

  // The experience metric the InfP wants: engagement (will the user stay?).
  auto truth_of = [](const app::WebSessionOutcome& o) {
    return o.record.metrics.engagement;
  };

  std::vector<std::vector<double>> train_x;
  std::vector<double> train_y;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!labeled[i]) continue;
    train_x.push_back(features[i]);
    train_y.push_back(truth_of(outcomes[i]));
  }
  if (train_x.size() < 8) return result;
  qoe::RidgeRegression model(1e-3);
  model.fit(train_x, train_y);

  // Per-sector truth (over every session: this is what client-side
  // measurement sees) with the k-anonymity gate applied for A2I export.
  std::unordered_map<std::uint32_t, std::vector<double>> truth_by_sector;
  for (const auto& o : outcomes)
    truth_by_sector[o.record.dims.region].push_back(truth_of(o));
  std::unordered_map<std::uint32_t, double> a2i_mean;
  double global_truth_mean = 0.0;
  {
    std::vector<double> all;
    for (const auto& o : outcomes) all.push_back(truth_of(o));
    global_truth_mean = mean_of(all);
  }
  for (const auto& [sector, values] : truth_by_sector) {
    if (values.size() < config.k_anonymity) {
      ++result.suppressed_sectors;
      continue;
    }
    a2i_mean[sector] = mean_of(values);
  }

  // Per-session errors on the unlabelled (deployment) set.
  double inf_err = 0.0, a2i_err = 0.0;
  std::size_t evaluated = 0;
  std::unordered_map<std::uint32_t, std::vector<double>> pred_by_sector;
  std::unordered_map<std::uint32_t, std::vector<double>> eval_truth_by_sector;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (labeled[i]) continue;
    const auto& o = outcomes[i];
    double truth = truth_of(o);
    double predicted = model.predict(features[i]);
    auto it = a2i_mean.find(o.record.dims.region);
    double via_a2i = it == a2i_mean.end() ? global_truth_mean : it->second;
    inf_err += std::abs(predicted - truth);
    a2i_err += std::abs(via_a2i - truth);
    pred_by_sector[o.record.dims.region].push_back(predicted);
    eval_truth_by_sector[o.record.dims.region].push_back(truth);
    ++evaluated;
    result.mean_true_plt += o.record.metrics.page_load_time;
  }
  if (evaluated == 0) return result;
  result.evaluated = evaluated;
  result.inference_mae = inf_err / static_cast<double>(evaluated);
  result.a2i_mae = a2i_err / static_cast<double>(evaluated);
  result.mean_true_plt /= static_cast<double>(evaluated);

  // Group-level error and ranking over unsuppressed sectors.
  std::vector<double> true_means, inferred_means, a2i_means;
  double inf_group_err = 0.0, a2i_group_err = 0.0;
  std::size_t groups = 0;
  for (const auto& [sector, mean] : a2i_mean) {
    auto pred_it = pred_by_sector.find(sector);
    if (pred_it == pred_by_sector.end()) continue;
    double truth = mean_of(truth_by_sector.at(sector));
    double inferred = mean_of(pred_it->second);
    true_means.push_back(truth);
    inferred_means.push_back(inferred);
    a2i_means.push_back(mean);
    inf_group_err += std::abs(inferred - truth);
    a2i_group_err += std::abs(mean - truth);
    ++groups;
  }
  if (groups >= 2) {
    result.inference_group_mae = inf_group_err / static_cast<double>(groups);
    result.a2i_group_mae = a2i_group_err / static_cast<double>(groups);
    result.inference_rank_corr =
        qoe::spearman_correlation(inferred_means, true_means);
    result.a2i_rank_corr = qoe::spearman_correlation(a2i_means, true_means);
  }
  return result;
}

}  // namespace eona::scenarios
