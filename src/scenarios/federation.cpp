#include "scenarios/federation.hpp"

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "app/content_catalog.hpp"
#include "app/video_player.hpp"
#include "app/workload.hpp"
#include "scenarios/chaos.hpp"
#include "scenarios/world.hpp"

namespace eona::scenarios {

namespace {
constexpr std::size_t kIsps = 2;
constexpr std::size_t kTenants = 3;
}  // namespace

FederationResult run_federation(const FederationConfig& config) {
  sim::World::Builder b(config.seed);
  b.attach_trace(config.trace);
  b.attach_store(config.store);

  // --- two access ISPs, three single-CDN tenants -----------------------------
  // Each CDN peers with both ISPs (one ingress link per (ISP, CDN) pair), so
  // every ISP's egress-sharing knob divides its pool across all three. With a
  // single peering point per pair there is nothing for traffic engineering to
  // re-select: capacity shares are the only contended resource.
  net::Topology& topo = b.topology();
  std::array<NodeId, kIsps> clients{};
  std::array<NodeId, kIsps> edges{};
  std::array<LinkId, kIsps> access{};
  for (std::size_t k = 0; k < kIsps; ++k) {
    std::string isp_name = "isp" + std::to_string(k);
    clients[k] =
        topo.add_node(net::NodeKind::kClientPop, isp_name + "-clients");
    edges[k] = topo.add_node(net::NodeKind::kRouter, isp_name + "-edge");
    access[k] = topo.add_link(edges[k], clients[k], config.access_capacity,
                              milliseconds(5), isp_name + "-access");
  }
  std::array<NodeId, kTenants> srv{};
  std::array<NodeId, kTenants> origin{};
  // ingress[k][i]: CDN i's peering link into ISP k. Every link starts at an
  // equal third of the pool; the InfPs' sharing ticks move it from there.
  std::array<std::array<LinkId, kTenants>, kIsps> ingress{};
  for (std::size_t i = 0; i < kTenants; ++i) {
    std::string name = "cdn" + std::to_string(i);
    srv[i] = topo.add_node(net::NodeKind::kCdnServer, name + "-srv");
    origin[i] = topo.add_node(net::NodeKind::kOrigin, name + "-origin");
    topo.add_link(origin[i], srv[i], mbps(500), milliseconds(15));
    for (std::size_t k = 0; k < kIsps; ++k) {
      ingress[k][i] = topo.add_link(
          srv[i], edges[k], config.pool / static_cast<double>(kTenants),
          milliseconds(8), name + "@isp" + std::to_string(k));
    }
  }

  b.build_network();
  net::PeeringBook& peering = b.world().peering();
  b.with_catalog(24, config.video_duration, 0.8);
  app::ContentCatalog& catalog = b.world().catalog();
  std::array<app::Cdn*, kTenants> cdns{};
  for (std::size_t i = 0; i < kTenants; ++i) {
    std::string name = "cdn" + std::to_string(i);
    cdns[i] = &b.add_cdn_at(name, origin[i]);
    ServerId sid = cdns[i]->add_server(srv[i], ingress[0][i], 48);
    std::vector<ContentId> all;
    for (std::size_t c = 0; c < catalog.size(); ++c)
      all.push_back(ContentId(static_cast<ContentId::rep_type>(c)));
    cdns[i]->warm_cache(sid, all);
    cdns[i]->set_peering_book(&peering);
  }
  for (std::size_t k = 0; k < kIsps; ++k)
    for (std::size_t i = 0; i < kTenants; ++i)
      peering.add(IspId(static_cast<IspId::rep_type>(k)), cdns[i]->id(),
                  ingress[k][i], "cdn" + std::to_string(i) + "@isp" +
                                     std::to_string(k));

  // --- three AppP tenants (tenant 0 lies), two InfPs -------------------------
  const std::vector<BitsPerSecond> ladder{kbps(300), kbps(700), mbps(1.5),
                                          mbps(3)};
  control::AppPConfig appp_cfg;
  appp_cfg.control_period = 10.0;
  appp_cfg.qoe_window = 60.0;
  appp_cfg.intended_bitrate = ladder.back();
  // Tenants are pinned to their own CDN: no trial-and-error CDN switching,
  // no primary-CDN steering. The forecast -> egress-share loop is the only
  // coupling between tenants, which is exactly what E19 measures.
  appp_cfg.stalls_before_switch = 1'000'000;
  appp_cfg.poor_throughput_rung = 0;
  appp_cfg.bad_qoe_buffering = 2.0;

  b.add_exchange();
  core::Exchange& exchange = b.world().exchange();
  std::array<control::AppPController*, kTenants> appps{};
  for (std::size_t i = 0; i < kTenants; ++i) {
    control::AppPConfig cfg = appp_cfg;
    if (i == 0) cfg.forecast_exaggeration = config.exaggeration;
    appps[i] = &b.add_appp("appp" + std::to_string(i), cfg);
  }
  if (config.broker) {
    // The broker arm: quota shares refer to the per-ISP pool, one equal
    // share per tenant. Claims above share * pool are clamped at publish.
    exchange.set_egress_reference(config.pool);
    for (std::size_t i = 0; i < kTenants; ++i)
      exchange.set_quota(appps[i]->id(),
                         core::TenantQuota{1.0 / static_cast<double>(kTenants)});
  }

  control::InfPConfig infp_cfg;
  infp_cfg.control_period = 30.0;
  infp_cfg.egress_share.enabled = true;
  infp_cfg.egress_share.pool = config.pool;
  infp_cfg.egress_share.min_share = 0.05;
  std::array<control::InfPController*, kIsps> infps{};
  for (std::size_t k = 0; k < kIsps; ++k)
    infps[k] = &b.add_infp("infp" + std::to_string(k),
                           IspId(static_cast<IspId::rep_type>(k)), {access[k]},
                           infp_cfg);

  // Full N x M wiring: every tenant pair crosses the exchange.
  for (std::size_t i = 0; i < kTenants; ++i)
    for (std::size_t k = 0; k < kIsps; ++k) b.wire_tenant(i, k);

  for (std::size_t i = 0; i < kTenants; ++i) {
    appps[i]->set_primary_cdn(cdns[i]->id(), "pinned");
    appps[i]->start();
  }
  for (std::size_t k = 0; k < kIsps; ++k) {
    infps[k]->set_eona_enabled(true);
    infps[k]->start();
  }

  // --- per-tenant workloads, alternating between the two ISPs ----------------
  std::array<app::SessionPool*, kTenants> pools{};
  for (std::size_t i = 0; i < kTenants; ++i) pools[i] = &b.add_session_pool();
  std::unique_ptr<sim::World> world = b.build();
  auto chaos = sim::schedule_faults(*world, config.faults);
  sim::Scheduler& sched = world->sched();

  app::PlayerConfig player_cfg;
  player_cfg.ladder = ladder;
  SessionId::rep_type next_session = 0;
  std::array<std::size_t, kTenants> isp_counter{};
  sim::Rng content_rng = world->rng().fork();

  auto spawner = [&](std::size_t tenant) {
    return [&, tenant] {
      SessionId session(next_session++);
      std::size_t k = isp_counter[tenant]++ % kIsps;
      telemetry::Dimensions dims;
      dims.isp = IspId(static_cast<IspId::rep_type>(k));
      ContentId content = catalog.sample(content_rng);
      pools[tenant]->spawn_player(
          sched, world->transfers(), world->network(), world->routing(),
          world->directory(), appps[tenant]->brain(),
          &appps[tenant]->collector(), player_cfg, session, dims, clients[k],
          catalog.item(content), qoe::EngagementModel{});
    };
  };
  TimePoint arrivals_end = config.run_duration - config.video_duration;
  std::vector<std::unique_ptr<app::PoissonArrivals>> arrivals;
  for (std::size_t i = 0; i < kTenants; ++i)
    arrivals.push_back(std::make_unique<app::PoissonArrivals>(
        sched, world->rng().fork(),
        std::vector<app::ArrivalPhase>{{0.0, config.arrival_rate}},
        arrivals_end,
        spawner(i)));

  // --- run -------------------------------------------------------------------
  sched.run_until(config.run_duration);
  for (auto& a : arrivals) a->stop();
  for (app::SessionPool* pool : pools) pool->abort_all();
  sched.run_until(config.run_duration + 1.0);
  world->auditor().finalize();

  // --- summarise -------------------------------------------------------------
  if (config.perf != nullptr) {
    config.perf->events += sched.events_fired();
    config.perf->add_exchange(world->exchange());
  }
  FederationResult result;
  result.liar = QoeSummary::from(pools[0]->summaries());
  result.victim1 = QoeSummary::from(pools[1]->summaries());
  result.victim2 = QoeSummary::from(pools[2]->summaries());
  result.victim_mean_engagement = (result.victim1.mean_engagement +
                                   result.victim2.mean_engagement) /
                                  2.0;
  result.victim_mean_bitrate =
      (result.victim1.mean_bitrate + result.victim2.mean_bitrate) / 2.0;
  for (std::size_t k = 0; k < kIsps; ++k) {
    result.liar_share += infps[k]->egress_share_of(cdns[0]->id()) /
                         static_cast<double>(kIsps);
    result.victim_share += (infps[k]->egress_share_of(cdns[1]->id()) +
                            infps[k]->egress_share_of(cdns[2]->id())) /
                           static_cast<double>(2 * kIsps);
  }
  result.clamps = world->exchange().clamp_count();
  result.rate_limited = world->exchange().total_delivery_stats().rate_limited;
  result.epoch_rejected = world->exchange().epoch_rejected();
  return result;
}

}  // namespace eona::scenarios
