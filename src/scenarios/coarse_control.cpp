#include "scenarios/coarse_control.hpp"

#include "app/content_catalog.hpp"
#include "app/video_player.hpp"
#include "app/workload.hpp"
#include "scenarios/chaos.hpp"
#include "scenarios/world.hpp"

namespace eona::scenarios {

CoarseControlResult run_coarse_control(const CoarseControlConfig& config) {
  sim::World::Builder b(config.seed);
  b.attach_trace(config.trace);
  b.attach_store(config.store);

  // --- topology ---------------------------------------------------------------
  b.add_isp_bottleneck(gbps(1));
  net::Topology& topo = b.topology();
  NodeId client = b.client();
  NodeId edge = b.edge();
  NodeId srv1a = topo.add_node(net::NodeKind::kCdnServer, "cdn1-srvA");
  NodeId srv1b = topo.add_node(net::NodeKind::kCdnServer, "cdn1-srvB");
  NodeId srv2 = topo.add_node(net::NodeKind::kCdnServer, "cdn2-srv");
  NodeId origin1 = topo.add_node(net::NodeKind::kOrigin, "cdn1-origin");
  NodeId origin2 = topo.add_node(net::NodeKind::kOrigin, "cdn2-origin");

  LinkId egress_1a =
      topo.add_link(srv1a, edge, config.server_capacity, milliseconds(8));
  LinkId egress_1b =
      topo.add_link(srv1b, edge, config.server_capacity, milliseconds(8));
  LinkId egress_2 =
      topo.add_link(srv2, edge, config.server_capacity, milliseconds(10));
  topo.add_link(origin1, srv1a, config.origin_capacity, milliseconds(30));
  topo.add_link(origin1, srv1b, config.origin_capacity, milliseconds(30));
  topo.add_link(origin2, srv2, config.origin_capacity, milliseconds(30));

  IspId isp(0);
  b.build_network(isp);
  net::Network& network = b.world().network();

  // --- CDNs: 1 has two servers (A about to degrade, B healthy + warm);
  //           2 is the rival with cold caches. --------------------------------
  b.with_catalog(config.catalog_size, config.video_duration, 0.8);
  app::ContentCatalog& catalog = b.world().catalog();
  app::Cdn& cdn1 = b.add_cdn_at("cdn-1", origin1);
  app::Cdn& cdn2 = b.add_cdn_at("cdn-2", origin2);
  ServerId s1a = cdn1.add_server(srv1a, egress_1a, config.catalog_size);
  ServerId s1b = cdn1.add_server(srv1b, egress_1b, config.catalog_size);
  cdn2.add_server(srv2, egress_2, config.catalog_size);
  {
    std::vector<ContentId> all;
    for (std::size_t i = 0; i < catalog.size(); ++i)
      all.push_back(ContentId(static_cast<ContentId::rep_type>(i)));
    cdn1.warm_cache(s1a, all);
    cdn1.warm_cache(s1b, all);
    // cdn2 deliberately cold.
  }

  // --- control planes ----------------------------------------------------------
  control::AppPConfig appp_cfg;
  appp_cfg.control_period = 5.0;
  appp_cfg.qoe_window = 30.0;
  b.add_exchange();
  control::AppPController& appp = b.add_appp("video-appp", appp_cfg);

  control::InfPConfig infp_cfg;
  infp_cfg.control_period = 10.0;
  control::InfPController& infp =
      b.add_infp("cdn-operator", isp, {}, infp_cfg);
  infp.attach_cdn(&cdn1);  // the CDN operator publishes server hints
  infp.attach_cdn(&cdn2);

  b.wire_tenant();
  // Oracle mode models the hypothetical global controller: the player brain
  // introspects the network directly AND both control planes run fully
  // informed (baseline logic would pollute the upper bound).
  appp.set_eona_enabled(config.mode != ControlMode::kBaseline);
  infp.set_eona_enabled(config.mode != ControlMode::kBaseline);
  appp.start();
  infp.start();

  control::OracleBrain& oracle = b.add_oracle();
  app::PlayerBrain& brain = (config.mode == ControlMode::kOracle)
                                ? static_cast<app::PlayerBrain&>(oracle)
                                : appp.brain();

  // --- the incident ---------------------------------------------------------------
  b.sched().schedule_at(config.incident_at, [&network, &config, egress_1a] {
    network.set_link_capacity(egress_1a,
                              config.server_capacity * config.degraded_factor);
  });

  // --- traffic accounting sink ------------------------------------------------------
  double bits_cdn1_post = 0.0, bits_total_post = 0.0;
  appp.collector().add_sink([&](const telemetry::SessionRecord& r) {
    if (r.timestamp < config.incident_at) return;
    bits_total_post += r.metrics.bytes_delivered;
    if (r.dims.cdn == cdn1.id()) bits_cdn1_post += r.metrics.bytes_delivered;
  });

  // --- workload ------------------------------------------------------------------
  app::SessionPool& pool = b.add_session_pool();
  std::unique_ptr<sim::World> world = b.build();
  auto chaos = sim::schedule_faults(*world, config.faults);
  sim::Scheduler& sched = world->sched();

  SessionId::rep_type next_session = 0;
  sim::Rng content_rng = world->rng().fork();
  auto spawn = [&] {
    SessionId session(next_session++);
    telemetry::Dimensions dims;
    dims.isp = isp;
    ContentId content = catalog.sample(content_rng);
    pool.spawn_player(sched, world->transfers(), network, world->routing(),
                      world->directory(), brain, &appp.collector(),
                      app::PlayerConfig{}, session, dims, client,
                      catalog.item(content), qoe::EngagementModel{});
  };
  app::PoissonArrivals arrivals(
      sched, world->rng().fork(), {{0.0, config.arrival_rate}},
      config.run_duration - config.video_duration, spawn);

  if (config.perf != nullptr) {
    config.perf->events += sched.events_fired();
    config.perf->add_exchange(world->exchange());
  }
  CoarseControlResult result;
  sim::PeriodicTask sampler(sched, 2.0, [&] {
    std::size_t active = 0, stalled = 0;
    pool.for_each([&](app::VideoPlayer& p) {
      ++active;
      if (p.stalled()) ++stalled;
    });
    result.metrics.series("stalled_fraction")
        .record(sched.now(),
                active == 0 ? 0.0 : static_cast<double>(stalled) / active);
  });

  // --- run ----------------------------------------------------------------------
  sched.run_until(config.run_duration);
  arrivals.stop();
  pool.abort_all();
  sched.run_until(config.run_duration + 1.0);
  world->auditor().finalize();

  // --- summarise -------------------------------------------------------------------
  result.qoe = QoeSummary::from(pool.summaries());
  result.post_incident = QoeSummary::from(
      pool.summaries(), [&](const app::SessionSummary& s) {
        return s.record.timestamp > config.incident_at;
      });
  result.cdn1_traffic_share =
      bits_total_post <= 0.0 ? 0.0 : bits_cdn1_post / bits_total_post;
  result.cdn2_hit_ratio = cdn2.hit_ratio();
  result.cdn_switches = result.qoe.cdn_switches;
  result.server_switches = result.qoe.server_switches;
  return result;
}

}  // namespace eona::scenarios
