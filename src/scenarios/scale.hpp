// Scale scenario (E17): a million-session world partitioned into sectors.
//
// The world is split into `sectors` independent ISP x CDN-region cells,
// each a complete mini sim::World (own scheduler, rng, network, CDN, AppP /
// InfP pair, session pool, auditor) assembled exactly like quickstart.
// Sectors couple only at barrier ticks: every `barrier_period` seconds all
// sectors advance to the barrier (serially, or on a SectorRunner pool when
// threads > 1), then a serial coordinator walks them in index order and
// reallocates a shared backbone headroom pool to the most-pressured access
// links. Because sectors share no mutable state between barriers and the
// coordinator is serial and order-fixed, the run's output is byte-identical
// at any thread count.
//
// Total admitted sessions is exact: each sector has a fixed quota
// (sessions / sectors, remainder spread over the low sectors), Poisson
// arrivals stop spawning at quota, and any Poisson shortfall is topped up
// at the first barrier past the arrival window.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "scenarios/common.hpp"

namespace eona::scenarios {

struct ScaleConfig {
  std::uint64_t seed = 42;
  ControlMode mode = ControlMode::kEona;
  std::size_t sessions = 100'000;  ///< total admitted sessions, exact
  std::size_t sectors = 64;        ///< ISP x CDN-region cells
  std::size_t threads = 1;         ///< worker threads for barrier rounds
  Duration run_duration = 600.0;
  Duration video_duration = 120.0;
  Duration barrier_period = 30.0;  ///< coupling-point spacing
  BitsPerSecond access_capacity = mbps(60);  ///< per-sector base access
  /// Backbone headroom pool as a fraction of the summed base access
  /// capacity; redistributed at each barrier to sectors over 90% utilisation.
  double headroom_fraction = 0.1;
  /// Diurnal (night/day/night) arrival profile instead of a flat rate.
  bool diurnal = false;
  RunPerf* perf = nullptr;  ///< optional run-cost counters (see common.hpp)
};

struct ScaleResult {
  QoeSummary qoe;                      ///< merged across all sectors
  std::vector<QoeSummary> per_sector;  ///< indexed by sector
  std::uint64_t events = 0;            ///< scheduler events, summed
  std::uint64_t arrivals = 0;          ///< sessions admitted (== sessions)
  std::size_t peak_concurrent = 0;     ///< max active sessions at a barrier
  std::uint64_t reallocations = 0;     ///< headroom grants that moved
  std::uint64_t barrier_rounds = 0;
};

ScaleResult run_scale(const ScaleConfig& config);

}  // namespace eona::scenarios
