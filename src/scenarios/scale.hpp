// Scale scenario (E17): a million-session world partitioned into sectors.
//
// The world is split into `sectors` independent ISP x CDN-region cells,
// each a complete mini sim::World (own scheduler, rng, network, CDN, AppP /
// InfP pair, session pool, auditor) assembled exactly like quickstart.
// Sectors couple only at barrier ticks: every `barrier_period` seconds all
// sectors advance to the barrier (serially, or on a SectorRunner pool when
// threads > 1), then a serial coordinator walks them in index order and
// reallocates a shared backbone headroom pool to the most-pressured access
// links. Because sectors share no mutable state between barriers and the
// coordinator is serial and order-fixed, the run's output is byte-identical
// at any thread count.
//
// Total admitted sessions is exact: each sector has a fixed quota
// (sessions / sectors, remainder spread over the low sectors), Poisson
// arrivals stop spawning at quota, and any Poisson shortfall is topped up
// at the first barrier past the arrival window.
//
// Barrier rounds are quiescence-aware (elide_quiescent): a sector with no
// session activity, a settled headroom grant, and its arrival window
// already handled is skipped for the round -- its clock catches up lazily
// the next time it is dispatched (or at the drain), firing exactly the
// same events in the same order, so the result JSON is byte-identical with
// elision on or off. See DESIGN.md "Quiescence and sparse barriers".
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "scenarios/common.hpp"

namespace eona::scenarios {

struct ScaleConfig {
  std::uint64_t seed = 42;
  ControlMode mode = ControlMode::kEona;
  std::size_t sessions = 100'000;  ///< total admitted sessions, exact
  std::size_t sectors = 64;        ///< ISP x CDN-region cells
  std::size_t threads = 1;         ///< worker threads for barrier rounds
  Duration run_duration = 600.0;
  Duration video_duration = 120.0;
  Duration barrier_period = 30.0;  ///< coupling-point spacing
  BitsPerSecond access_capacity = mbps(60);  ///< per-sector base access
  /// Backbone headroom pool as a fraction of the summed base access
  /// capacity; redistributed at each barrier to sectors over 90% utilisation.
  double headroom_fraction = 0.1;
  /// Diurnal (night/day/night) arrival profile instead of a flat rate.
  bool diurnal = false;
  /// Night arrival rate as a fraction of the mean (diurnal only); the day
  /// peak is (2 - frac) x mean so the cycle mean stays the configured rate.
  /// 0.5 reproduces the original 0.5x..1.5x profile; 0 models a dead-of-
  /// night trough where whole sectors drain and can be elided.
  double diurnal_night_frac = 0.5;
  /// Length of the arrival window; 0 means run_duration - video_duration
  /// (the historical default, sized so the last arrival can finish). A
  /// shorter window models an evening peak followed by a quiet tail.
  Duration arrival_window = 0.0;
  /// Skip dispatching provably-quiescent sectors at barrier rounds (no
  /// session activity, settled grant, arrival window closed). Output is
  /// byte-identical either way -- pinned by tests -- so this is purely a
  /// wall-clock knob, kept toggleable for benchmarks and CI to prove it.
  bool elide_quiescent = true;
  RunPerf* perf = nullptr;  ///< optional run-cost counters (see common.hpp)
};

struct ScaleResult {
  QoeSummary qoe;                      ///< merged across all sectors
  std::vector<QoeSummary> per_sector;  ///< indexed by sector
  std::uint64_t events = 0;            ///< scheduler events, summed
  std::uint64_t arrivals = 0;          ///< sessions admitted (== sessions)
  std::size_t peak_concurrent = 0;     ///< max active sessions at a barrier
  std::uint64_t reallocations = 0;     ///< headroom grants that moved
  std::uint64_t barrier_rounds = 0;
  /// Dispatch accounting (not serialized into the scenario JSON, which must
  /// stay byte-identical with elision on or off): sector advances actually
  /// run, and quiescent sectors skipped with a deferred clock catch-up.
  std::uint64_t sectors_dispatched = 0;
  std::uint64_t sectors_elided = 0;
};

ScaleResult run_scale(const ScaleConfig& config);

}  // namespace eona::scenarios
