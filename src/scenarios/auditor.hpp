// Continuous conservation checks over a running World.
//
// The chaos engine mutates the data plane mid-run; the auditor proves the
// rest of the stack kept its invariants while that happened. It subscribes
// to the event bus (no polling loop of its own -- checks piggyback on the
// network's own recompute events) and verifies, on every rate recompute:
//
//  * capacity conservation -- per link, the sum of allocated flow rates
//    never exceeds the *effective* capacity (zero while the link is down);
//  * no dead-link throughput -- a flow whose path crosses a down link holds
//    rate exactly 0 until it is rerouted or aborted.
//
// When a brokered exchange is attached (watch_exchange), broker-survival
// invariants join the set: no report is ever accepted into a channel while
// the broker is crashed (i.e. under a stale epoch), every live bearer token
// maps to a durable link record whose trust-redacted policy the leg still
// carries (no redacted-attribute leaks across re-registration replay), and
// tenant egress shares sum to <= 1 whenever the egress reference is finite.
// These are re-checked on every fault event, every churn hook, and at
// finalize().
//
// Session-lifecycle conservation is checked at finalize(): every session
// the data plane stranded must have been resolved -- resumed on a live path
// or finished (aborted counts; silently lingering does not) -- and no live
// flow may still be routed over a down link. Scenario runners call
// finalize() after their scheduler drains; a violation at any point throws
// eona::Error, failing the run loudly instead of producing subtly wrong
// results.
//
// Lives in namespace eona::sim (like World) but compiles in the scenarios
// layer, the one place allowed to see every subsystem it audits.
#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "common/error.hpp"
#include "eona/exchange.hpp"
#include "net/network.hpp"
#include "sim/event_bus.hpp"
#include "sim/events.hpp"

namespace eona::sim {

/// Bus-subscribed invariant checker; see file header.
class InvariantAuditor {
 public:
  InvariantAuditor(EventBus& bus, const net::Network& network)
      : bus_(bus), network_(network) {
    bus.subscribe<RateRecomputeEvent>(
        [this](const RateRecomputeEvent& e) { on_recompute(e); });
    bus.subscribe<SessionStrandedEvent>([this](const SessionStrandedEvent& e) {
      stranded_.insert(e.session);
      ++stranded_events_;
    });
    bus.subscribe<SessionResumedEvent>([this](const SessionResumedEvent& e) {
      stranded_.erase(e.session);
      ++resumed_events_;
    });
    bus.subscribe<SessionFinishedEvent>(
        [this](const SessionFinishedEvent& e) { stranded_.erase(e.session); });
  }

  InvariantAuditor(const InvariantAuditor&) = delete;
  InvariantAuditor& operator=(const InvariantAuditor&) = delete;

  /// Audit a brokered exchange alongside the data plane: structural checks
  /// (token/link/policy consistency, quota sums) run on every fault event
  /// and at finalize(), and any report accepted into a channel while the
  /// broker is crashed fails immediately -- the fence proof that nothing is
  /// delivered under a stale epoch.
  void watch_exchange(const core::Exchange* exchange) {
    if (exchange == nullptr || exchange_ != nullptr) {
      exchange_ = exchange;
      return;
    }
    exchange_ = exchange;
    bus_.subscribe<FaultEvent>([this](const FaultEvent&) { check_exchange(); });
    bus_.subscribe<ReportPublishedEvent>([this](const ReportPublishedEvent& e) {
      if (exchange_ != nullptr && exchange_->crashed())
        fail(std::string("report '") + e.kind +
             "' accepted into a channel while the broker is crashed");
    });
  }

  /// Structural exchange invariants; safe to call any time (no-op when no
  /// exchange is watched). Churn hooks call this after every mutation.
  void check_exchange() const {
    if (exchange_ == nullptr) return;
    ++exchange_checks_;
    std::string violation = exchange_->invariant_violation();
    if (!violation.empty()) fail(violation);
  }

  [[nodiscard]] std::uint64_t exchange_checks() const {
    return exchange_checks_;
  }

  /// End-of-run conservation: no flow still routed over a down link, and no
  /// stranded session left unresolved. Throws eona::Error on violation.
  void finalize() const {
    const net::Topology& topo = network_.topology();
    for (const net::Link& link : topo.links()) {
      if (network_.link_up(link.id)) continue;
      int flows = network_.link_flow_count(link.id);
      if (flows > 0)
        fail("finalize: " + std::to_string(flows) +
             " flow(s) still routed over down link " + link_name(link.id));
    }
    if (!stranded_.empty())
      fail("finalize: " + std::to_string(stranded_.size()) +
           " stranded session(s) never resumed nor finished (first: session " +
           std::to_string(stranded_.begin()->value()) + ")");
    check_exchange();
  }

  /// Recompute-time checks performed so far.
  [[nodiscard]] std::uint64_t check_count() const { return check_count_; }
  [[nodiscard]] std::uint64_t stranded_events() const {
    return stranded_events_;
  }
  [[nodiscard]] std::uint64_t resumed_events() const {
    return resumed_events_;
  }
  /// Sessions currently stranded (awaiting resume/finish).
  [[nodiscard]] std::size_t open_stranded() const { return stranded_.size(); }

 private:
  void on_recompute(const RateRecomputeEvent& e) {
    ++check_count_;
    const net::Topology& topo = network_.topology();
    for (const net::Link& link : topo.links()) {
      BitsPerSecond allocated = network_.link_allocated(link.id);
      BitsPerSecond cap = network_.link_capacity(link.id);  // effective
      if (allocated > cap + kEps)
        fail("recompute " + std::to_string(e.recompute) + ": link " +
             link_name(link.id) + " allocated " + std::to_string(allocated) +
             " > effective capacity " + std::to_string(cap));
      if (!network_.link_up(link.id)) {
        for (FlowId fid : network_.flows_on(link.id)) {
          if (network_.rate(fid) > kEps)
            fail("recompute " + std::to_string(e.recompute) + ": flow " +
                 std::to_string(fid.value()) + " carries rate " +
                 std::to_string(network_.rate(fid)) + " over down link " +
                 link_name(link.id));
        }
      }
    }
  }

  [[nodiscard]] std::string link_name(LinkId id) const {
    const net::Link& link = network_.topology().link(id);
    return link.name.empty() ? std::to_string(id.value()) : link.name;
  }

  [[noreturn]] static void fail(const std::string& what) {
    throw Error("invariant violation: " + what);
  }

  static constexpr double kEps = 1e-6;

  EventBus& bus_;
  const net::Network& network_;
  const core::Exchange* exchange_ = nullptr;
  std::set<SessionId> stranded_;  // ordered: deterministic first-violation id
  std::uint64_t check_count_ = 0;
  mutable std::uint64_t exchange_checks_ = 0;
  std::uint64_t stranded_events_ = 0;
  std::uint64_t resumed_events_ = 0;
};

}  // namespace eona::sim
