#include "scenarios/quickstart.hpp"

#include "app/content_catalog.hpp"
#include "app/video_player.hpp"
#include "app/workload.hpp"
#include "scenarios/chaos.hpp"
#include "scenarios/world.hpp"

namespace eona::scenarios {

QuickstartResult run_quickstart(const QuickstartConfig& config) {
  // World assembly: every line below is a Builder convenience; compare with
  // flashcrowd.cpp for the raw-topology version of the same wiring.
  sim::World::Builder b(config.seed);
  b.attach_trace(config.trace);
  b.attach_store(config.store);
  b.add_isp_bottleneck(config.access_capacity);
  b.with_catalog(16, config.video_duration);
  sim::World::Builder::CdnSpec cdn_spec;
  cdn_spec.warm = true;
  b.add_cdn("cdn", cdn_spec);
  IspId isp(0);
  b.build_network(isp);

  b.add_exchange();
  control::AppPController& appp = b.add_appp("video-appp");
  control::InfPController& infp =
      b.add_infp("access-isp", isp, {b.access_link()});
  b.wire_tenant();
  const bool eona = config.mode != ControlMode::kBaseline;
  appp.set_eona_enabled(eona);
  infp.set_eona_enabled(eona);
  appp.start();
  infp.start();
  control::OracleBrain& oracle = b.add_oracle();
  app::PlayerBrain& brain = (config.mode == ControlMode::kOracle)
                                ? static_cast<app::PlayerBrain&>(oracle)
                                : appp.brain();

  app::SessionPool& pool = b.add_session_pool();
  NodeId client = b.client();
  std::unique_ptr<sim::World> world = b.build();
  auto chaos = sim::schedule_faults(*world, config.faults);
  sim::Scheduler& sched = world->sched();

  // Workload: Poisson video sessions until the tail can still finish.
  app::ContentCatalog& catalog = world->catalog();
  sim::Rng content_rng = world->rng().fork();
  SessionId::rep_type next_session = 0;
  auto spawn = [&] {
    SessionId session(next_session++);
    telemetry::Dimensions dims;
    dims.isp = isp;
    ContentId content = catalog.sample(content_rng);
    pool.spawn_player(sched, world->transfers(), world->network(),
                      world->routing(), world->directory(), brain,
                      &appp.collector(), app::PlayerConfig{}, session, dims,
                      client, catalog.item(content), qoe::EngagementModel{});
  };
  app::PoissonArrivals arrivals(
      sched, world->rng().fork(), {{0.0, config.arrival_rate}},
      config.run_duration - config.video_duration, spawn);

  sched.run_until(config.run_duration);
  arrivals.stop();
  pool.abort_all();
  sched.run_until(config.run_duration + 1.0);
  world->auditor().finalize();

  if (config.perf != nullptr) {
    config.perf->events += sched.events_fired();
    config.perf->add_exchange(world->exchange());
  }
  QuickstartResult result;
  result.qoe = QoeSummary::from(pool.summaries());
  return result;
}

}  // namespace eona::scenarios
