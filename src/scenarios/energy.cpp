#include "scenarios/energy.hpp"

#include "app/content_catalog.hpp"
#include "app/video_player.hpp"
#include "app/workload.hpp"
#include "net/peering.hpp"
#include "net/transfer.hpp"
#include "sim/rng.hpp"

namespace eona::scenarios {

EnergyScenarioResult run_energy(const EnergyScenarioConfig& config) {
  sim::Scheduler sched;
  sim::Rng rng(config.seed);

  // --- topology: one CDN, `servers` clusters --------------------------------
  net::Topology topo;
  NodeId client = topo.add_node(net::NodeKind::kClientPop, "clients");
  NodeId edge = topo.add_node(net::NodeKind::kRouter, "isp-edge");
  NodeId origin = topo.add_node(net::NodeKind::kOrigin, "origin");
  topo.add_link(edge, client, gbps(2), milliseconds(5));

  net::Topology* t = &topo;
  std::vector<NodeId> server_nodes;
  std::vector<LinkId> server_links;
  for (std::size_t i = 0; i < config.servers; ++i) {
    NodeId node = t->add_node(net::NodeKind::kCdnServer,
                              "srv-" + std::to_string(i));
    server_nodes.push_back(node);
    server_links.push_back(
        t->add_link(node, edge, config.server_capacity, milliseconds(8)));
    t->add_link(origin, node, mbps(40), milliseconds(25));
  }

  net::Network network(topo);
  net::TransferManager transfers(sched, network);
  net::Routing routing(topo);
  IspId isp(0);

  app::ContentCatalog catalog =
      app::ContentCatalog::videos(60, config.video_duration, 0.8);
  app::Cdn cdn(CdnId(0), "cdn", origin);
  for (std::size_t i = 0; i < config.servers; ++i) {
    ServerId sid = cdn.add_server(server_nodes[i], server_links[i], 20);
    // Warm each cache with the head of the popularity curve (cache capacity
    // is a third of the catalog; the tail always misses via the origin).
    std::vector<ContentId> head;
    for (std::size_t c = 0; c < 20; ++c)
      head.push_back(ContentId(static_cast<ContentId::rep_type>(c)));
    cdn.warm_cache(sid, head);
  }
  app::CdnDirectory directory;
  directory.add(&cdn);

  // --- control ---------------------------------------------------------------
  core::ProviderRegistry registry;
  ProviderId appp_id =
      registry.register_provider(core::ProviderKind::kAppP, "video-appp");
  ProviderId energy_id =
      registry.register_provider(core::ProviderKind::kInfP, "cdn-energy");

  control::AppPConfig appp_cfg;
  appp_cfg.control_period = 10.0;
  appp_cfg.qoe_window = 60.0;
  control::AppPController appp(sched, network, directory, appp_id, appp_cfg);
  appp.start();

  control::EnergyConfig energy_cfg;
  energy_cfg.control_period = config.energy_period;
  energy_cfg.scale_down_load = config.scale_down_load;
  energy_cfg.scale_up_load = config.scale_up_load;
  control::EnergyManager energy(sched, network, cdn, energy_id, energy_cfg);
  wire_energy_a2i(registry, appp, energy);
  energy.set_eona_enabled(config.eona);
  energy.start();

  // --- workload: diurnal cycle -------------------------------------------------
  std::vector<app::ArrivalPhase> phases;
  TimePoint t0 = 0.0;
  for (std::size_t c = 0; c < config.cycles; ++c) {
    phases.push_back({t0, config.day_rate});
    phases.push_back({t0 + config.phase_length, config.night_rate});
    t0 += 2.0 * config.phase_length;
  }
  TimePoint run_duration = t0;

  app::SessionPool pool(sched, &network);
  SessionId::rep_type next_session = 0;
  sim::Rng content_rng = rng.fork();
  auto spawn = [&] {
    SessionId session(next_session++);
    telemetry::Dimensions dims;
    dims.isp = isp;
    ContentId content = catalog.sample(content_rng);
    pool.spawn([&, session, dims,
                content](app::VideoPlayer::DoneCallback done) {
      return std::make_unique<app::VideoPlayer>(
          sched, transfers, network, routing, directory, appp.brain(),
          &appp.collector(), app::PlayerConfig{}, session, dims, client,
          catalog.item(content), qoe::EngagementModel{}, std::move(done));
    });
  };
  app::PoissonArrivals arrivals(sched, rng.fork(), phases,
                                run_duration - config.video_duration, spawn);

  EnergyScenarioResult result;
  sim::PeriodicTask sampler(sched, 5.0, [&] {
    result.metrics.series("online_servers")
        .record(sched.now(), static_cast<double>(cdn.online_count()));
    std::size_t active = 0, stalled = 0;
    pool.for_each([&](app::VideoPlayer& p) {
      ++active;
      if (p.stalled()) ++stalled;
    });
    result.metrics.series("stalled_fraction")
        .record(sched.now(),
                active == 0 ? 0.0 : static_cast<double>(stalled) / active);
  });

  // --- run -----------------------------------------------------------------------
  sched.run_until(run_duration);
  arrivals.stop();
  pool.abort_all();
  sched.run_until(run_duration + 1.0);

  // --- summarise --------------------------------------------------------------------
  result.qoe = QoeSummary::from(pool.summaries());
  result.night_qoe = QoeSummary::from(
      pool.summaries(), [&](const app::SessionSummary& s) {
        // Night phases are the odd phase_length slots.
        auto slot = static_cast<std::size_t>(s.record.timestamp /
                                             config.phase_length);
        return slot % 2 == 1;
      });
  double total = static_cast<double>(config.servers) * run_duration;
  result.saved_fraction = energy.server_seconds_saved(run_duration) / total;
  result.mean_online =
      energy.online_series().time_weighted_mean(0.0, run_duration);
  result.shutdowns = energy.shutdowns();
  result.wakes = energy.wakes();
  return result;
}

}  // namespace eona::scenarios
