#include "scenarios/energy.hpp"

#include "app/content_catalog.hpp"
#include "app/video_player.hpp"
#include "app/workload.hpp"
#include "scenarios/chaos.hpp"
#include "scenarios/world.hpp"

namespace eona::scenarios {

EnergyScenarioResult run_energy(const EnergyScenarioConfig& config) {
  sim::World::Builder b(config.seed);
  b.attach_trace(config.trace);
  b.attach_store(config.store);

  // --- topology: one CDN, `servers` clusters --------------------------------
  b.add_isp_bottleneck(gbps(2));
  net::Topology& topo = b.topology();
  NodeId client = b.client();
  NodeId edge = b.edge();
  NodeId origin = topo.add_node(net::NodeKind::kOrigin, "origin");

  std::vector<NodeId> server_nodes;
  std::vector<LinkId> server_links;
  for (std::size_t i = 0; i < config.servers; ++i) {
    NodeId node = topo.add_node(net::NodeKind::kCdnServer,
                                "srv-" + std::to_string(i));
    server_nodes.push_back(node);
    server_links.push_back(
        topo.add_link(node, edge, config.server_capacity, milliseconds(8)));
    topo.add_link(origin, node, mbps(40), milliseconds(25));
  }

  IspId isp(0);
  b.build_network(isp);

  b.with_catalog(60, config.video_duration, 0.8);
  app::ContentCatalog& catalog = b.world().catalog();
  app::Cdn& cdn = b.add_cdn_at("cdn", origin);
  for (std::size_t i = 0; i < config.servers; ++i) {
    ServerId sid = cdn.add_server(server_nodes[i], server_links[i], 20);
    // Warm each cache with the head of the popularity curve (cache capacity
    // is a third of the catalog; the tail always misses via the origin).
    std::vector<ContentId> head;
    for (std::size_t c = 0; c < 20; ++c)
      head.push_back(ContentId(static_cast<ContentId::rep_type>(c)));
    cdn.warm_cache(sid, head);
  }

  // --- control ---------------------------------------------------------------
  control::AppPConfig appp_cfg;
  appp_cfg.control_period = 10.0;
  appp_cfg.qoe_window = 60.0;
  b.add_exchange();
  control::AppPController& appp = b.add_appp("video-appp", appp_cfg);
  appp.start();

  control::EnergyConfig energy_cfg;
  energy_cfg.control_period = config.energy_period;
  energy_cfg.scale_down_load = config.scale_down_load;
  energy_cfg.scale_up_load = config.scale_up_load;
  control::EnergyManager& energy = b.add_energy("cdn-energy", cdn, energy_cfg);
  b.wire_energy_a2i();
  energy.set_eona_enabled(config.eona);
  energy.start();

  // --- workload: diurnal cycle -------------------------------------------------
  std::vector<app::ArrivalPhase> phases;
  TimePoint t0 = 0.0;
  for (std::size_t c = 0; c < config.cycles; ++c) {
    phases.push_back({t0, config.day_rate});
    phases.push_back({t0 + config.phase_length, config.night_rate});
    t0 += 2.0 * config.phase_length;
  }
  TimePoint run_duration = t0;

  app::SessionPool& pool = b.add_session_pool();
  std::unique_ptr<sim::World> world = b.build();
  auto chaos = sim::schedule_faults(*world, config.faults);
  sim::Scheduler& sched = world->sched();

  SessionId::rep_type next_session = 0;
  sim::Rng content_rng = world->rng().fork();
  auto spawn = [&] {
    SessionId session(next_session++);
    telemetry::Dimensions dims;
    dims.isp = isp;
    ContentId content = catalog.sample(content_rng);
    pool.spawn_player(sched, world->transfers(), world->network(),
                      world->routing(), world->directory(), appp.brain(),
                      &appp.collector(), app::PlayerConfig{}, session, dims,
                      client, catalog.item(content), qoe::EngagementModel{});
  };
  app::PoissonArrivals arrivals(sched, world->rng().fork(), phases,
                                run_duration - config.video_duration, spawn);

  if (config.perf != nullptr) {
    config.perf->events += sched.events_fired();
    config.perf->add_exchange(world->exchange());
  }
  EnergyScenarioResult result;
  sim::PeriodicTask sampler(sched, 5.0, [&] {
    result.metrics.series("online_servers")
        .record(sched.now(), static_cast<double>(cdn.online_count()));
    std::size_t active = 0, stalled = 0;
    pool.for_each([&](app::VideoPlayer& p) {
      ++active;
      if (p.stalled()) ++stalled;
    });
    result.metrics.series("stalled_fraction")
        .record(sched.now(),
                active == 0 ? 0.0 : static_cast<double>(stalled) / active);
  });

  // --- run -----------------------------------------------------------------------
  sched.run_until(run_duration);
  arrivals.stop();
  pool.abort_all();
  sched.run_until(run_duration + 1.0);
  world->auditor().finalize();

  // --- summarise --------------------------------------------------------------------
  result.qoe = QoeSummary::from(pool.summaries());
  result.night_qoe = QoeSummary::from(
      pool.summaries(), [&](const app::SessionSummary& s) {
        // Night phases are the odd phase_length slots.
        auto slot = static_cast<std::size_t>(s.record.timestamp /
                                             config.phase_length);
        return slot % 2 == 1;
      });
  double total = static_cast<double>(config.servers) * run_duration;
  result.saved_fraction = energy.server_seconds_saved(run_duration) / total;
  result.mean_online =
      energy.online_series().time_weighted_mean(0.0, run_duration);
  result.shutdowns = energy.shutdowns();
  result.wakes = energy.wakes();
  return result;
}

}  // namespace eona::scenarios
