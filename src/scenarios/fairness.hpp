// §5 "fairness and trust" scenario: one InfP serving two AppPs.
//
// Two video AppPs (one large, one small) share the Fig 5 world: both use
// CDNs X and Y, and the ISP picks X's ingress point once for everyone. The
// ISP merges whatever A2I it receives; its single egress knob affects both
// tenants. Questions the paper raises:
//   * fairness -- when both participate, does the small AppP get the same
//     experience as the large one?
//   * partial deployment -- when only one AppP participates, does the
//     non-participant get hurt, or does it free-ride on the fixed
//     interconnect while still burning its own trial-and-error switches?
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "scenarios/common.hpp"
#include "telemetry/column_store.hpp"

namespace eona::scenarios {

struct FairnessConfig {
  std::uint64_t seed = 1;
  bool appp1_eona = false;  ///< the large AppP participates in EONA
  bool appp2_eona = false;  ///< the small AppP participates in EONA
  double rate1 = 0.18;      ///< large AppP arrivals/s
  double rate2 = 0.07;      ///< small AppP arrivals/s
  BitsPerSecond capacity_b = mbps(45);
  BitsPerSecond capacity_cx = mbps(400);
  BitsPerSecond capacity_cy = mbps(50);
  Duration video_duration = 180.0;
  TimePoint run_duration = 1200.0;
  TimePoint measure_from = 300.0;
  /// When set, receives the run's JSONL event trace.
  /// Optional chaos plan (FaultPlan grammar; see scenarios/chaos.hpp).
  /// Empty = no fault injection, byte-identical to the plan-free build.
  std::string faults;
  sim::TraceWriter* trace = nullptr;
  /// When set, a StoreRecorder feeds this columnar store the run's event
  /// stream (eona_lab --store=FILE dumps it as queryable rows).
  telemetry::ColumnStore* store = nullptr;
  /// When non-null, accumulates run-cost counters (scheduler events).
  RunPerf* perf = nullptr;
};

struct FairnessResult {
  QoeSummary appp1;
  QoeSummary appp2;
  /// |engagement(1) - engagement(2)|: the fairness gap between tenants.
  double engagement_gap = 0.0;
  std::size_t isp_switches = 0;  ///< X-egress changes in the window
  bool green_path = false;       ///< X enters via the IXP at window end
};

[[nodiscard]] FairnessResult run_fairness(const FairnessConfig& config);

}  // namespace eona::scenarios
