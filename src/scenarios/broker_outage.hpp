// Broker survivability scenario (E20): the federation plane (two access
// ISPs x three AppP tenants, egress pool divided by A2I forecasts, tenant 0
// over-reporting against a broker quota) -- but the broker itself is mortal.
//
// A chaos plan crashes the exchange mid-run and restarts it later. The
// crash bumps the broker epoch: every bearer token goes stale, publishes
// are fenced (counted as epoch_rejected), fetches answer nothing. The knob
// under test is how tenants ride out the outage:
//
//  * degraded=true  -- EONA degraded mode: robust fetchers keep serving
//    last-known-good A2I/I2A data (stale-aware), so the ISPs' egress shares
//    hold their informed split while the broker is down, and the armed
//    ExchangeEndpoints re-register on a seeded jittered backoff the moment
//    the broker returns.
//  * degraded=false -- block-on-broker baseline: a tick whose fetches miss
//    clears the view, so every ISP falls back to an equal egress split.
//    The heavy tenant's share collapses mid-stream and its viewers pay in
//    rebuffer-seconds until the broker returns and forecasts reappear.
//
// After the restart the scenario also churns tenancy mid-run: a fourth
// AppP joins (quota shares renormalize to keep summing to 1), and tenant 2
// unwires from ISP 1. The InvariantAuditor re-checks the exchange
// invariants at every transition, and the E19 containment story must hold
// across the outage: the liar's share stays clamped after re-registration.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "scenarios/common.hpp"
#include "telemetry/column_store.hpp"

namespace eona::scenarios {

struct BrokerOutageConfig {
  std::uint64_t seed = 1;
  /// EONA degraded mode (robust last-known-good fetches) vs the naive
  /// block-on-broker baseline (view clears while the broker is down).
  bool degraded = true;
  /// Tenant 0's forecast multiplier (the E19 liar; containment must
  /// survive the broker restart).
  double exaggeration = 6.0;
  double arrival_rate = 0.1;        ///< sessions/s, honest tenants 0 and 2
  /// Sessions/s for tenant 1 (the dip probe). Sized so the tenant's
  /// steady concurrency can ride the informed egress share (quota 0.6) but
  /// NOT the equal-split fallback -- the naive arm's collapse leaves less
  /// than the bottom ladder rung per viewer, so it stalls for the whole
  /// outage instead of adapting its way out.
  double heavy_arrival_rate = 2.5;
  BitsPerSecond pool = mbps(120);   ///< per-ISP egress pool to divide
  BitsPerSecond access_capacity = mbps(250);
  Duration video_duration = 120.0;
  TimePoint run_duration = 600.0;
  // --- broker outage window (used when `faults` is empty) ---
  TimePoint crash_at = 180.0;
  TimePoint restart_at = 300.0;
  /// Optional explicit chaos plan (FaultPlan grammar, e.g.
  /// "crash:exchange@180; restart:exchange@300"); overrides the knobs above.
  std::string faults;
  // --- mid-run tenant churn (0 disables either event) ---
  TimePoint churn_join_at = 390.0;   ///< fourth AppP registers + wires
  TimePoint churn_leave_at = 480.0;  ///< tenant 2 unwires from ISP 1
  /// When set, receives the run's JSONL event trace.
  sim::TraceWriter* trace = nullptr;
  /// When set, a StoreRecorder feeds this columnar store the run's events.
  telemetry::ColumnStore* store = nullptr;
  /// When non-null, accumulates run-cost counters (scheduler events,
  /// broker clamp/rate-limit/epoch-fence totals).
  RunPerf* perf = nullptr;
};

struct BrokerOutageResult {
  QoeSummary qoe;     ///< tenants 0-2 pooled (the pre-outage population)
  QoeSummary heavy;   ///< tenant 1 alone (who the naive fallback starves)
  QoeSummary joiner;  ///< the churned-in tenant (zero when churn disabled)
  /// Integral of the stalled-player count (1 Hz samples) from crash_at on.
  double rebuffer_seconds = 0.0;
  /// Slowest tenant's restart -> reattached latency (0 when none detached);
  /// must stay within `reattach_horizon`.
  double time_to_reattach = 0.0;
  Duration reattach_horizon = 0.0;  ///< ReattachPolicy::horizon() bound
  std::uint64_t reattaches = 0;         ///< successful re-registrations
  std::uint64_t reattach_attempts = 0;  ///< including rejected tries
  Duration detached_seconds = 0.0;      ///< worst per-tenant detached time
  std::uint64_t epoch_rejected = 0;  ///< publishes fenced by the dead broker
  std::uint64_t clamps = 0;          ///< quota clamps (E19 containment)
  std::uint64_t rate_limited = 0;    ///< per-leg rate-cap drops, summed
  /// Tenant 0's egress share (mean of ISPs) probed 80 s after the restart
  /// -- after every tenant reattached and the InfPs re-ran their sharing
  /// ticks, before churn muddies the denominator. Containment across the
  /// outage = this stays at the liar's quota, not at its claims.
  double liar_share = 0.0;
  std::uint64_t faults = 0;            ///< chaos actions executed
  std::uint64_t exchange_checks = 0;   ///< auditor broker-invariant sweeps
  std::uint64_t auditor_checks = 0;    ///< conservation sweeps
};

[[nodiscard]] BrokerOutageResult run_broker_outage(
    const BrokerOutageConfig& config);

}  // namespace eona::scenarios
