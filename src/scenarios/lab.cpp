#include "scenarios/lab.hpp"

#include <string>

#include "common/error.hpp"
#include "scenarios/broker_outage.hpp"
#include "scenarios/cellular_web.hpp"
#include "scenarios/coarse_control.hpp"
#include "scenarios/energy.hpp"
#include "scenarios/failover.hpp"
#include "scenarios/fairness.hpp"
#include "scenarios/federation.hpp"
#include "scenarios/flashcrowd.hpp"
#include "scenarios/oscillation.hpp"
#include "scenarios/quickstart.hpp"
#include "scenarios/scale.hpp"
#include "sim/trace.hpp"

namespace eona::scenarios {

void Overrides::number(const char* key, double& out) {
  auto it = kv_.find(key);
  if (it == kv_.end()) return;
  out = std::stod(it->second);
  kv_.erase(it);
}

void Overrides::integer(const char* key, std::uint64_t& out) {
  auto it = kv_.find(key);
  if (it == kv_.end()) return;
  out = std::stoull(it->second);
  kv_.erase(it);
}

void Overrides::size(const char* key, std::size_t& out) {
  auto it = kv_.find(key);
  if (it == kv_.end()) return;
  out = static_cast<std::size_t>(std::stoull(it->second));
  kv_.erase(it);
}

void Overrides::boolean(const char* key, bool& out) {
  auto it = kv_.find(key);
  if (it == kv_.end()) return;
  out = it->second == "1" || it->second == "true" || it->second == "yes";
  kv_.erase(it);
}

void Overrides::mode(const char* key, ControlMode& out) {
  auto it = kv_.find(key);
  if (it == kv_.end()) return;
  if (it->second == "baseline") out = ControlMode::kBaseline;
  else if (it->second == "eona") out = ControlMode::kEona;
  else if (it->second == "oracle") out = ControlMode::kOracle;
  else throw ConfigError("mode must be baseline|eona|oracle");
  kv_.erase(it);
}

void Overrides::text(const char* key, std::string& out) {
  auto it = kv_.find(key);
  if (it == kv_.end()) return;
  out = it->second;
  kv_.erase(it);
}

void Overrides::finish() const {
  if (kv_.empty()) return;
  std::string unknown;
  for (const auto& [k, v] : kv_) unknown += " " + k;
  throw ConfigError("unknown keys:" + unknown);
}

namespace {

core::JsonValue qoe_json(const QoeSummary& qoe) {
  core::JsonValue obj = core::JsonValue::object();
  obj.set("sessions", core::JsonValue::number(static_cast<double>(qoe.sessions)));
  obj.set("mean_buffering", core::JsonValue::number(qoe.mean_buffering));
  obj.set("p90_buffering", core::JsonValue::number(qoe.p90_buffering));
  obj.set("mean_bitrate", core::JsonValue::number(qoe.mean_bitrate));
  obj.set("mean_join_time", core::JsonValue::number(qoe.mean_join_time));
  obj.set("mean_engagement", core::JsonValue::number(qoe.mean_engagement));
  obj.set("stalls", core::JsonValue::number(static_cast<double>(qoe.stalls)));
  obj.set("cdn_switches",
          core::JsonValue::number(static_cast<double>(qoe.cdn_switches)));
  obj.set("server_switches",
          core::JsonValue::number(static_cast<double>(qoe.server_switches)));
  return obj;
}

core::JsonValue health_json(const telemetry::DeliveryHealthSnapshot& h) {
  return core::JsonValue::parse(core::to_json(h, 0));
}

core::JsonValue run_flashcrowd(Overrides& ov, sim::MetricSet* series_out,
                               sim::TraceWriter* trace,
                               telemetry::ColumnStore* store,
                               RunPerf* perf) {
  FlashCrowdConfig config;
  config.trace = trace;
  config.store = store;
  config.perf = perf;
  ov.mode("mode", config.mode);
  ov.integer("seed", config.seed);
  double access_mbps = config.access_capacity / 1e6;
  ov.number("access_capacity_mbps", access_mbps);
  config.access_capacity = mbps(access_mbps);
  double origin_mbps = config.origin_capacity / 1e6;
  ov.number("origin_capacity_mbps", origin_mbps);
  config.origin_capacity = mbps(origin_mbps);
  ov.number("arrival_rate", config.arrival_rate);
  ov.number("crowd_background_fraction", config.crowd_background_fraction);
  ov.size("crowd_flows", config.crowd_flows);
  ov.number("crowd_start", config.crowd_start);
  ov.number("crowd_end", config.crowd_end);
  ov.number("run_duration", config.run_duration);
  ov.number("a2i_delay", config.a2i_delay);
  ov.number("i2a_delay", config.i2a_delay);
  // Control-plane fault injection + consumer robustness (E13).
  ov.number("i2a_drop", config.i2a_fault.drop_rate);
  ov.number("i2a_duplicate", config.i2a_fault.duplicate_rate);
  ov.number("i2a_jitter", config.i2a_fault.max_extra_delay);
  ov.number("a2i_drop", config.a2i_fault.drop_rate);
  double outage_start = 0.0, outage_end = 0.0;
  ov.number("outage_start", outage_start);
  ov.number("outage_end", outage_end);
  if (outage_end > outage_start) {
    config.i2a_fault.outages.push_back({outage_start, outage_end});
    config.a2i_fault.outages.push_back({outage_start, outage_end});
  }
  ov.boolean("robust", config.robust_fetch);
  ov.size("max_retries", config.retry.max_retries);
  ov.number("base_backoff", config.retry.base_backoff);
  ov.number("freshness_deadline", config.retry.freshness_deadline);
  ov.number("stale_widening", config.stale_widening);
  // Elastic capacity provisioning (E16): off | reactive | forecast.
  std::string provision = "off";
  ov.text("provision", provision);
  if (provision == "reactive" || provision == "forecast") {
    config.provision.enabled = true;
    config.provision.forecast_driven = provision == "forecast";
    config.provision.step = mbps(20);
    config.provision.max_capacity = mbps(160);
  } else if (provision != "off") {
    throw ConfigError("provision must be off|reactive|forecast");
  }
  double step_mbps = config.provision.step / 1e6;
  ov.number("provision_step_mbps", step_mbps);
  config.provision.step = mbps(step_mbps);
  double max_mbps = config.provision.max_capacity / 1e6;
  ov.number("provision_max_mbps", max_mbps);
  config.provision.max_capacity = mbps(max_mbps);
  ov.number("provision_lead", config.provision.lead_time);
  ov.number("provision_util", config.provision.order_utilization);
  ov.number("provision_headroom", config.provision.headroom);
  ov.number("provision_horizon", config.provision.horizon);
  ov.number("forecast_alpha", config.forecast.alpha);
  ov.number("forecast_beta", config.forecast.beta);
  ov.number("forecast_period", config.forecast.period);
  ov.number("qoe_stall_threshold", config.qoe_stall_threshold);
  ov.text("faults", config.faults);
  ov.finish();

  FlashCrowdResult r = run_flash_crowd(config);
  core::JsonValue out = core::JsonValue::object();
  out.set("scenario", core::JsonValue::string("flashcrowd"));
  out.set("mode", core::JsonValue::string(to_string(config.mode)));
  out.set("qoe", qoe_json(r.qoe));
  out.set("crowd_qoe", qoe_json(r.crowd_qoe));
  out.set("peak_stalled_fraction",
          core::JsonValue::number(r.peak_stalled_fraction));
  out.set("mean_access_utilization",
          core::JsonValue::number(r.mean_access_utilization));
  out.set("i2a_health", health_json(r.i2a_health));
  out.set("a2i_health", health_json(r.a2i_health));
  out.set("provision", core::JsonValue::string(provision));
  out.set("time_over_qoe_threshold",
          core::JsonValue::number(r.time_over_qoe_threshold));
  out.set("provision_orders",
          core::JsonValue::number(static_cast<double>(r.provision_orders)));
  out.set("final_access_capacity_mbps",
          core::JsonValue::number(r.final_access_capacity / 1e6));
  if (series_out != nullptr) *series_out = std::move(r.metrics);
  return out;
}

core::JsonValue run_oscillation_lab(Overrides& ov, sim::MetricSet* series_out,
                               sim::TraceWriter* trace,
                               telemetry::ColumnStore* store,
                               RunPerf* perf) {
  OscillationConfig config;
  config.trace = trace;
  config.store = store;
  config.perf = perf;
  ov.mode("mode", config.mode);
  ov.integer("seed", config.seed);
  ov.number("run_duration", config.run_duration);
  ov.number("arrival_rate", config.arrival_rate);
  ov.number("appp_period", config.appp_period);
  ov.number("infp_period", config.infp_period);
  ov.number("appp_dwell", config.appp_dwell);
  ov.number("infp_dwell", config.infp_dwell);
  ov.number("a2i_delay", config.a2i_delay);
  ov.number("i2a_delay", config.i2a_delay);
  ov.text("faults", config.faults);
  ov.finish();

  OscillationResult r = run_oscillation(config);
  core::JsonValue out = core::JsonValue::object();
  out.set("scenario", core::JsonValue::string("oscillation"));
  out.set("mode", core::JsonValue::string(to_string(config.mode)));
  out.set("qoe", qoe_json(r.qoe));
  out.set("appp_switches",
          core::JsonValue::number(static_cast<double>(r.appp_switches)));
  out.set("infp_switches",
          core::JsonValue::number(static_cast<double>(r.infp_switches)));
  out.set("cycling", core::JsonValue::boolean(r.cycling));
  out.set("converged", core::JsonValue::boolean(r.converged));
  out.set("green_path", core::JsonValue::boolean(r.green_path));
  if (series_out != nullptr) *series_out = std::move(r.metrics);
  return out;
}

core::JsonValue run_coarse(Overrides& ov, sim::MetricSet* series_out,
                               sim::TraceWriter* trace,
                               telemetry::ColumnStore* store,
                               RunPerf* perf) {
  CoarseControlConfig config;
  config.trace = trace;
  config.store = store;
  config.perf = perf;
  ov.mode("mode", config.mode);
  ov.integer("seed", config.seed);
  ov.number("incident_at", config.incident_at);
  ov.number("run_duration", config.run_duration);
  ov.number("degraded_factor", config.degraded_factor);
  ov.number("arrival_rate", config.arrival_rate);
  ov.text("faults", config.faults);
  ov.finish();

  CoarseControlResult r = run_coarse_control(config);
  core::JsonValue out = core::JsonValue::object();
  out.set("scenario", core::JsonValue::string("coarse_control"));
  out.set("mode", core::JsonValue::string(to_string(config.mode)));
  out.set("qoe", qoe_json(r.qoe));
  out.set("post_incident", qoe_json(r.post_incident));
  out.set("cdn1_traffic_share", core::JsonValue::number(r.cdn1_traffic_share));
  out.set("cdn2_hit_ratio", core::JsonValue::number(r.cdn2_hit_ratio));
  if (series_out != nullptr) *series_out = std::move(r.metrics);
  return out;
}

core::JsonValue run_energy_lab(Overrides& ov, sim::MetricSet* series_out,
                               sim::TraceWriter* trace,
                               telemetry::ColumnStore* store,
                               RunPerf* perf) {
  EnergyScenarioConfig config;
  config.trace = trace;
  config.store = store;
  config.perf = perf;
  ov.integer("seed", config.seed);
  ov.boolean("eona", config.eona);
  ov.number("scale_down_load", config.scale_down_load);
  ov.number("scale_up_load", config.scale_up_load);
  ov.number("day_rate", config.day_rate);
  ov.number("night_rate", config.night_rate);
  ov.size("cycles", config.cycles);
  ov.text("faults", config.faults);
  ov.finish();

  EnergyScenarioResult r = run_energy(config);
  core::JsonValue out = core::JsonValue::object();
  out.set("scenario", core::JsonValue::string("energy"));
  out.set("eona", core::JsonValue::boolean(config.eona));
  out.set("qoe", qoe_json(r.qoe));
  out.set("night_qoe", qoe_json(r.night_qoe));
  out.set("saved_fraction", core::JsonValue::number(r.saved_fraction));
  out.set("mean_online", core::JsonValue::number(r.mean_online));
  if (series_out != nullptr) *series_out = std::move(r.metrics);
  return out;
}

core::JsonValue run_cellular(Overrides& ov, sim::TraceWriter* trace,
                     telemetry::ColumnStore* store, RunPerf* perf) {
  CellularWebConfig config;
  config.trace = trace;
  config.store = store;
  config.perf = perf;
  ov.integer("seed", config.seed);
  ov.size("sessions", config.sessions);
  ov.size("sectors", config.sectors);
  ov.number("feature_noise", config.feature_noise);
  ov.number("labeled_fraction", config.labeled_fraction);
  ov.integer("k_anonymity", config.k_anonymity);
  // No data-plane topology to fault here; accept the uniform key but only
  // the empty plan.
  std::string faults;
  ov.text("faults", faults);
  if (!faults.empty())
    throw ConfigError("cellular does not support --faults");
  ov.finish();

  CellularWebResult r = run_cellular_web(config);
  core::JsonValue out = core::JsonValue::object();
  out.set("scenario", core::JsonValue::string("cellular_web"));
  out.set("evaluated",
          core::JsonValue::number(static_cast<double>(r.evaluated)));
  out.set("inference_mae", core::JsonValue::number(r.inference_mae));
  out.set("a2i_mae", core::JsonValue::number(r.a2i_mae));
  out.set("inference_group_mae",
          core::JsonValue::number(r.inference_group_mae));
  out.set("a2i_group_mae", core::JsonValue::number(r.a2i_group_mae));
  return out;
}

core::JsonValue run_fairness_lab(Overrides& ov, sim::TraceWriter* trace,
                     telemetry::ColumnStore* store, RunPerf* perf) {
  FairnessConfig config;
  config.trace = trace;
  config.store = store;
  config.perf = perf;
  ov.integer("seed", config.seed);
  ov.boolean("appp1_eona", config.appp1_eona);
  ov.boolean("appp2_eona", config.appp2_eona);
  ov.number("rate1", config.rate1);
  ov.number("rate2", config.rate2);
  ov.number("run_duration", config.run_duration);
  ov.text("faults", config.faults);
  ov.finish();

  FairnessResult r = run_fairness(config);
  core::JsonValue out = core::JsonValue::object();
  out.set("scenario", core::JsonValue::string("fairness"));
  out.set("appp1", qoe_json(r.appp1));
  out.set("appp2", qoe_json(r.appp2));
  out.set("engagement_gap", core::JsonValue::number(r.engagement_gap));
  out.set("green_path", core::JsonValue::boolean(r.green_path));
  return out;
}

core::JsonValue run_federation_lab(Overrides& ov, sim::TraceWriter* trace,
                                   telemetry::ColumnStore* store,
                                   RunPerf* perf) {
  FederationConfig config;
  config.trace = trace;
  config.store = store;
  config.perf = perf;
  ov.integer("seed", config.seed);
  ov.boolean("broker", config.broker);
  ov.number("exaggeration", config.exaggeration);
  ov.number("arrival_rate", config.arrival_rate);
  double pool_mbps = config.pool / 1e6;
  ov.number("pool_mbps", pool_mbps);
  config.pool = mbps(pool_mbps);
  double access_mbps = config.access_capacity / 1e6;
  ov.number("access_capacity_mbps", access_mbps);
  config.access_capacity = mbps(access_mbps);
  ov.number("video_duration", config.video_duration);
  ov.number("run_duration", config.run_duration);
  ov.text("faults", config.faults);
  ov.finish();

  FederationResult r = run_federation(config);
  core::JsonValue out = core::JsonValue::object();
  out.set("scenario", core::JsonValue::string("federation"));
  out.set("broker", core::JsonValue::boolean(config.broker));
  out.set("exaggeration", core::JsonValue::number(config.exaggeration));
  out.set("liar", qoe_json(r.liar));
  out.set("victim1", qoe_json(r.victim1));
  out.set("victim2", qoe_json(r.victim2));
  out.set("victim_mean_engagement",
          core::JsonValue::number(r.victim_mean_engagement));
  out.set("victim_mean_bitrate",
          core::JsonValue::number(r.victim_mean_bitrate));
  out.set("liar_share", core::JsonValue::number(r.liar_share));
  out.set("victim_share", core::JsonValue::number(r.victim_share));
  out.set("clamps", core::JsonValue::number(static_cast<double>(r.clamps)));
  return out;
}

core::JsonValue run_broker_outage_lab(Overrides& ov, sim::TraceWriter* trace,
                                      telemetry::ColumnStore* store,
                                      RunPerf* perf) {
  BrokerOutageConfig config;
  config.trace = trace;
  config.store = store;
  config.perf = perf;
  ov.integer("seed", config.seed);
  ov.boolean("degraded", config.degraded);
  ov.number("exaggeration", config.exaggeration);
  ov.number("arrival_rate", config.arrival_rate);
  ov.number("heavy_arrival_rate", config.heavy_arrival_rate);
  double pool_mbps = config.pool / 1e6;
  ov.number("pool_mbps", pool_mbps);
  config.pool = mbps(pool_mbps);
  double access_mbps = config.access_capacity / 1e6;
  ov.number("access_capacity_mbps", access_mbps);
  config.access_capacity = mbps(access_mbps);
  ov.number("video_duration", config.video_duration);
  ov.number("run_duration", config.run_duration);
  ov.number("crash_at", config.crash_at);
  ov.number("restart_at", config.restart_at);
  ov.number("churn_join_at", config.churn_join_at);
  ov.number("churn_leave_at", config.churn_leave_at);
  ov.text("faults", config.faults);
  ov.finish();

  BrokerOutageResult r = run_broker_outage(config);
  core::JsonValue out = core::JsonValue::object();
  out.set("scenario", core::JsonValue::string("broker_outage"));
  out.set("degraded", core::JsonValue::boolean(config.degraded));
  out.set("qoe", qoe_json(r.qoe));
  out.set("heavy", qoe_json(r.heavy));
  out.set("joiner", qoe_json(r.joiner));
  out.set("rebuffer_seconds", core::JsonValue::number(r.rebuffer_seconds));
  out.set("time_to_reattach", core::JsonValue::number(r.time_to_reattach));
  out.set("reattach_horizon", core::JsonValue::number(r.reattach_horizon));
  out.set("reattaches",
          core::JsonValue::number(static_cast<double>(r.reattaches)));
  out.set("reattach_attempts",
          core::JsonValue::number(static_cast<double>(r.reattach_attempts)));
  out.set("detached_seconds", core::JsonValue::number(r.detached_seconds));
  out.set("epoch_rejected",
          core::JsonValue::number(static_cast<double>(r.epoch_rejected)));
  out.set("clamps", core::JsonValue::number(static_cast<double>(r.clamps)));
  out.set("rate_limited",
          core::JsonValue::number(static_cast<double>(r.rate_limited)));
  out.set("liar_share", core::JsonValue::number(r.liar_share));
  out.set("faults", core::JsonValue::number(static_cast<double>(r.faults)));
  out.set("exchange_checks",
          core::JsonValue::number(static_cast<double>(r.exchange_checks)));
  out.set("auditor_checks",
          core::JsonValue::number(static_cast<double>(r.auditor_checks)));
  return out;
}

core::JsonValue run_failover_lab(Overrides& ov, sim::MetricSet* series_out,
                               sim::TraceWriter* trace,
                               telemetry::ColumnStore* store,
                               RunPerf* perf) {
  FailoverConfig config;
  config.trace = trace;
  config.store = store;
  config.perf = perf;
  ov.mode("mode", config.mode);
  ov.integer("seed", config.seed);
  ov.number("run_duration", config.run_duration);
  ov.number("arrival_rate", config.arrival_rate);
  ov.number("outage_start", config.outage_start);
  ov.number("outage_duration", config.outage_duration);
  ov.number("appp_period", config.appp_period);
  ov.number("infp_period", config.infp_period);
  double cap_b_mbps = config.capacity_b / 1e6;
  ov.number("capacity_b_mbps", cap_b_mbps);
  config.capacity_b = mbps(cap_b_mbps);
  double cap_cx_mbps = config.capacity_cx / 1e6;
  ov.number("capacity_cx_mbps", cap_cx_mbps);
  config.capacity_cx = mbps(cap_cx_mbps);
  double cap_cy_mbps = config.capacity_cy / 1e6;
  ov.number("capacity_cy_mbps", cap_cy_mbps);
  config.capacity_cy = mbps(cap_cy_mbps);
  ov.text("faults", config.faults);
  ov.finish();

  FailoverResult r = run_failover(config);
  core::JsonValue out = core::JsonValue::object();
  out.set("scenario", core::JsonValue::string("failover"));
  out.set("mode", core::JsonValue::string(to_string(config.mode)));
  out.set("qoe", qoe_json(r.qoe));
  out.set("rebuffer_seconds", core::JsonValue::number(r.rebuffer_seconds));
  out.set("time_to_recovery", core::JsonValue::number(r.time_to_recovery));
  out.set("faults", core::JsonValue::number(static_cast<double>(r.faults)));
  out.set("aborted_transfers",
          core::JsonValue::number(static_cast<double>(r.aborted_transfers)));
  out.set("stranded_sessions",
          core::JsonValue::number(static_cast<double>(r.stranded_sessions)));
  out.set("resumed_sessions",
          core::JsonValue::number(static_cast<double>(r.resumed_sessions)));
  out.set("infp_failovers",
          core::JsonValue::number(static_cast<double>(r.infp_failovers)));
  out.set("auditor_checks",
          core::JsonValue::number(static_cast<double>(r.auditor_checks)));
  if (series_out != nullptr) *series_out = std::move(r.metrics);
  return out;
}

core::JsonValue run_scale_lab(Overrides& ov, sim::TraceWriter* trace,
                              telemetry::ColumnStore* store, RunPerf* perf) {
  // A million-session run emits hundreds of millions of bus events; JSONL
  // traces and store ingestion at that volume are not meaningful artifacts.
  if (trace != nullptr || store != nullptr)
    throw ConfigError("scale does not support --trace/--store");
  ScaleConfig config;
  config.perf = perf;
  ov.mode("mode", config.mode);
  ov.integer("seed", config.seed);
  ov.size("sessions", config.sessions);
  ov.size("sectors", config.sectors);
  // Threads change only the wall clock, never the output: the result JSON
  // is byte-identical at any worker count (so threads is not echoed below).
  ov.size("threads", config.threads);
  ov.number("run_duration", config.run_duration);
  ov.number("video_duration", config.video_duration);
  ov.number("barrier_period", config.barrier_period);
  double access_mbps = config.access_capacity / 1e6;
  ov.number("access_capacity_mbps", access_mbps);
  config.access_capacity = mbps(access_mbps);
  ov.number("headroom_fraction", config.headroom_fraction);
  ov.boolean("diurnal", config.diurnal);
  ov.number("diurnal_night_frac", config.diurnal_night_frac);
  ov.number("arrival_window", config.arrival_window);
  // Elision, like threads, changes only the wall clock: quiescent sectors
  // skipped at barriers replay the identical event stream when their clock
  // catches up, so the JSON below is byte-identical either way (pinned by
  // scenario_scale_test) and `elide` is not echoed.
  ov.boolean("elide", config.elide_quiescent);
  // Sector-sharded worlds have no single chaos clock; accept the uniform
  // key but only the empty plan.
  std::string faults;
  ov.text("faults", faults);
  if (!faults.empty())
    throw ConfigError("scale does not support --faults");
  ov.finish();

  ScaleResult r = run_scale(config);
  core::JsonValue out = core::JsonValue::object();
  out.set("scenario", core::JsonValue::string("scale"));
  out.set("mode", core::JsonValue::string(to_string(config.mode)));
  out.set("sessions",
          core::JsonValue::number(static_cast<double>(r.arrivals)));
  out.set("sectors",
          core::JsonValue::number(static_cast<double>(config.sectors)));
  out.set("qoe", qoe_json(r.qoe));
  out.set("events", core::JsonValue::number(static_cast<double>(r.events)));
  out.set("peak_concurrent",
          core::JsonValue::number(static_cast<double>(r.peak_concurrent)));
  out.set("reallocations",
          core::JsonValue::number(static_cast<double>(r.reallocations)));
  out.set("barrier_rounds",
          core::JsonValue::number(static_cast<double>(r.barrier_rounds)));
  // Per-sector detail only at debuggable scale; thousands of sectors would
  // swamp the output.
  if (config.sectors <= 16) {
    core::JsonValue per = core::JsonValue::array();
    for (const QoeSummary& qoe : r.per_sector) per.push_back(qoe_json(qoe));
    out.set("per_sector", std::move(per));
  }
  return out;
}

core::JsonValue run_quickstart_lab(Overrides& ov, sim::TraceWriter* trace,
                     telemetry::ColumnStore* store, RunPerf* perf) {
  QuickstartConfig config;
  config.trace = trace;
  config.store = store;
  config.perf = perf;
  ov.mode("mode", config.mode);
  ov.integer("seed", config.seed);
  ov.number("arrival_rate", config.arrival_rate);
  double access_mbps = config.access_capacity / 1e6;
  ov.number("access_capacity_mbps", access_mbps);
  config.access_capacity = mbps(access_mbps);
  ov.number("run_duration", config.run_duration);
  ov.text("faults", config.faults);
  ov.finish();

  QuickstartResult r = run_quickstart(config);
  core::JsonValue out = core::JsonValue::object();
  out.set("scenario", core::JsonValue::string("quickstart"));
  out.set("mode", core::JsonValue::string(to_string(config.mode)));
  out.set("qoe", qoe_json(r.qoe));
  return out;
}

}  // namespace

const std::vector<std::string>& scenario_names() {
  static const std::vector<std::string> names = {
      "flashcrowd", "oscillation", "coarse",   "energy",   "cellular",
      "fairness",   "federation",  "quickstart", "failover", "scale",
      "broker_outage"};
  return names;
}

core::JsonValue run_scenario_json(
    const std::string& scenario,
    const std::map<std::string, std::string>& overrides,
    sim::MetricSet* series_out, sim::TraceWriter* trace,
    telemetry::ColumnStore* store, RunPerf* perf) {
  Overrides ov(overrides);
  if (scenario == "flashcrowd")
    return run_flashcrowd(ov, series_out, trace, store, perf);
  if (scenario == "oscillation")
    return run_oscillation_lab(ov, series_out, trace, store, perf);
  if (scenario == "coarse")
    return run_coarse(ov, series_out, trace, store, perf);
  if (scenario == "energy")
    return run_energy_lab(ov, series_out, trace, store, perf);
  if (scenario == "cellular") return run_cellular(ov, trace, store, perf);
  if (scenario == "fairness") return run_fairness_lab(ov, trace, store, perf);
  if (scenario == "federation")
    return run_federation_lab(ov, trace, store, perf);
  if (scenario == "quickstart")
    return run_quickstart_lab(ov, trace, store, perf);
  if (scenario == "failover")
    return run_failover_lab(ov, series_out, trace, store, perf);
  if (scenario == "scale") return run_scale_lab(ov, trace, store, perf);
  if (scenario == "broker_outage")
    return run_broker_outage_lab(ov, trace, store, perf);
  throw ConfigError("unknown scenario '" + scenario + "'");
}

}  // namespace eona::scenarios
