#include "scenarios/sweep.hpp"

#include <string>

#include "common/error.hpp"
#include "scenarios/lab.hpp"
#include "sim/sweep.hpp"
#include "sim/trace.hpp"

namespace eona::scenarios {

core::JsonValue run_sweep(const SweepSpec& spec, std::string* trace_out) {
  if (spec.scenario.empty()) throw ConfigError("sweep: scenario required");
  if (spec.seeds.empty()) throw ConfigError("sweep: at least one seed");

  struct Job {
    std::uint64_t seed;
    const std::string* mode;  ///< nullptr = scenario default
  };
  std::vector<Job> jobs;
  jobs.reserve(spec.seeds.size() *
               (spec.modes.empty() ? 1 : spec.modes.size()));
  for (std::uint64_t seed : spec.seeds) {
    if (spec.modes.empty()) {
      jobs.push_back({seed, nullptr});
    } else {
      for (const std::string& mode : spec.modes) jobs.push_back({seed, &mode});
    }
  }

  // Per-job trace buffers: each job writes only its own slot, so tracing
  // needs no locks and collation below is a simple job-order concat.
  std::vector<std::string> traces(trace_out != nullptr ? jobs.size() : 0);

  sim::SweepRunner runner(spec.threads);
  std::vector<core::JsonValue> results =
      runner.run(jobs.size(), [&](std::size_t i) {
        const Job& job = jobs[i];
        std::map<std::string, std::string> overrides = spec.overrides;
        overrides["seed"] = std::to_string(job.seed);
        if (job.mode != nullptr) overrides[spec.mode_key] = *job.mode;
        sim::TraceWriter trace;
        sim::TraceWriter* trace_ptr = trace_out != nullptr ? &trace : nullptr;
        core::JsonValue run =
            run_scenario_json(spec.scenario, overrides, nullptr, trace_ptr);
        run.set("seed", core::JsonValue::number(static_cast<double>(job.seed)));
        if (trace_out != nullptr) traces[i] = trace.buffer();
        return run;
      });

  if (trace_out != nullptr) {
    trace_out->clear();
    for (const std::string& t : traces) *trace_out += t;
  }

  core::JsonValue out = core::JsonValue::object();
  out.set("scenario", core::JsonValue::string(spec.scenario));
  out.set("run_count",
          core::JsonValue::number(static_cast<double>(results.size())));
  core::JsonValue runs = core::JsonValue::array();
  for (core::JsonValue& run : results) runs.push_back(std::move(run));
  out.set("runs", std::move(runs));
  return out;
}

}  // namespace eona::scenarios
