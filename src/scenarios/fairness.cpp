#include "scenarios/fairness.hpp"

#include "app/content_catalog.hpp"
#include "app/video_player.hpp"
#include "app/workload.hpp"
#include "scenarios/chaos.hpp"
#include "scenarios/world.hpp"

namespace eona::scenarios {

FairnessResult run_fairness(const FairnessConfig& config) {
  sim::World::Builder b(config.seed);
  b.attach_trace(config.trace);
  b.attach_store(config.store);

  // --- Fig 5 topology shared by both tenants ---------------------------------
  b.add_isp_bottleneck(gbps(1));
  net::Topology& topo = b.topology();
  NodeId client = b.client();
  NodeId edge = b.edge();
  NodeId srv_x = topo.add_node(net::NodeKind::kCdnServer, "cdnX-srv");
  NodeId srv_y = topo.add_node(net::NodeKind::kCdnServer, "cdnY-srv");
  NodeId origin_x = topo.add_node(net::NodeKind::kOrigin, "cdnX-origin");
  NodeId origin_y = topo.add_node(net::NodeKind::kOrigin, "cdnY-origin");

  LinkId x_at_b =
      topo.add_link(srv_x, edge, config.capacity_b, milliseconds(3), "X@B");
  LinkId x_at_c =
      topo.add_link(srv_x, edge, config.capacity_cx, milliseconds(12), "X@C");
  LinkId y_at_c =
      topo.add_link(srv_y, edge, config.capacity_cy, milliseconds(12), "Y@C");
  topo.add_link(origin_x, srv_x, mbps(500), milliseconds(15));
  topo.add_link(origin_y, srv_y, mbps(500), milliseconds(15));

  IspId isp(0);
  b.build_network(isp);
  net::PeeringBook& peering = b.world().peering();

  b.with_catalog(24, config.video_duration, 0.8);
  app::ContentCatalog& catalog = b.world().catalog();
  app::Cdn& cdn_x = b.add_cdn_at("cdn-X", origin_x);
  app::Cdn& cdn_y = b.add_cdn_at("cdn-Y", origin_y);
  ServerId sx = cdn_x.add_server(srv_x, x_at_b, 32);
  ServerId sy = cdn_y.add_server(srv_y, y_at_c, 32);
  peering.add(isp, cdn_x.id(), x_at_b, "X@B");
  PeeringId peer_xc = peering.add(isp, cdn_x.id(), x_at_c, "X@C");
  peering.add(isp, cdn_y.id(), y_at_c, "Y@C");
  cdn_x.set_peering_book(&peering);
  cdn_y.set_peering_book(&peering);
  {
    std::vector<ContentId> all;
    for (std::size_t i = 0; i < catalog.size(); ++i)
      all.push_back(ContentId(static_cast<ContentId::rep_type>(i)));
    cdn_x.warm_cache(sx, all);
    cdn_y.warm_cache(sy, all);
  }

  // --- two AppP control planes, one InfP --------------------------------------
  const std::vector<BitsPerSecond> ladder{kbps(300), kbps(700), mbps(1.5),
                                          mbps(3)};
  control::AppPConfig appp_cfg;
  appp_cfg.control_period = 10.0;
  appp_cfg.qoe_window = 60.0;
  appp_cfg.bad_qoe_buffering = 0.03;
  appp_cfg.bad_qoe_bitrate = mbps(1.2);
  appp_cfg.intended_bitrate = ladder.back();
  b.add_exchange();
  control::AppPController& appp1 = b.add_appp("appp-large", appp_cfg);
  control::AppPController& appp2 = b.add_appp("appp-small", appp_cfg);

  control::InfPConfig infp_cfg;
  infp_cfg.control_period = 120.0;
  control::InfPController& infp = b.add_infp("access-isp", isp, {}, infp_cfg);

  // Wire each participating AppP; the ISP merges all subscribed A2I feeds.
  if (config.appp1_eona) b.wire_tenant(0);
  if (config.appp2_eona) b.wire_tenant(1);
  appp1.set_eona_enabled(config.appp1_eona);
  appp2.set_eona_enabled(config.appp2_eona);
  infp.set_eona_enabled(config.appp1_eona || config.appp2_eona);
  appp1.start();
  appp2.start();
  infp.start();

  // --- per-tenant workloads ------------------------------------------------------
  app::SessionPool& pool1 = b.add_session_pool();
  app::SessionPool& pool2 = b.add_session_pool();
  std::unique_ptr<sim::World> world = b.build();
  auto chaos = sim::schedule_faults(*world, config.faults);
  sim::Scheduler& sched = world->sched();

  app::PlayerConfig player_cfg;
  player_cfg.ladder = ladder;
  SessionId::rep_type next_session = 0;
  sim::Rng content_rng = world->rng().fork();

  auto spawner = [&](control::AppPController& appp, app::SessionPool& pool) {
    return [&] {
      SessionId session(next_session++);
      telemetry::Dimensions dims;
      dims.isp = isp;
      ContentId content = catalog.sample(content_rng);
      pool.spawn_player(sched, world->transfers(), world->network(),
                        world->routing(), world->directory(), appp.brain(),
                        &appp.collector(), player_cfg, session, dims, client,
                        catalog.item(content), qoe::EngagementModel{});
    };
  };
  TimePoint arrivals_end = config.run_duration - config.video_duration;
  app::PoissonArrivals arrivals1(sched, world->rng().fork(),
                                 {{0.0, config.rate1}}, arrivals_end,
                                 spawner(appp1, pool1));
  app::PoissonArrivals arrivals2(sched, world->rng().fork(),
                                 {{0.0, config.rate2}}, arrivals_end,
                                 spawner(appp2, pool2));

  // --- run --------------------------------------------------------------------------
  sched.run_until(config.run_duration);
  arrivals1.stop();
  arrivals2.stop();
  pool1.abort_all();
  pool2.abort_all();
  sched.run_until(config.run_duration + 1.0);
  world->auditor().finalize();

  // --- summarise -----------------------------------------------------------------------
  if (config.perf != nullptr) {
    config.perf->events += sched.events_fired();
    config.perf->add_exchange(world->exchange());
  }
  FairnessResult result;
  result.appp1 = QoeSummary::from(pool1.summaries());
  result.appp2 = QoeSummary::from(pool2.summaries());
  result.engagement_gap =
      std::abs(result.appp1.mean_engagement - result.appp2.mean_engagement);
  const control::DecisionTrace& trace = infp.egress_trace(cdn_x.id());
  result.isp_switches =
      trace.changes_between(config.measure_from, arrivals_end);
  result.green_path =
      trace.value_at(arrivals_end) == static_cast<int>(peer_xc.value());
  return result;
}

}  // namespace eona::scenarios
