#include "scenarios/fairness.hpp"

#include "app/content_catalog.hpp"
#include "app/video_player.hpp"
#include "app/workload.hpp"
#include "net/peering.hpp"
#include "net/transfer.hpp"
#include "sim/rng.hpp"

namespace eona::scenarios {

FairnessResult run_fairness(const FairnessConfig& config) {
  sim::Scheduler sched;
  sim::Rng rng(config.seed);

  // --- Fig 5 topology shared by both tenants ---------------------------------
  net::Topology topo;
  NodeId client = topo.add_node(net::NodeKind::kClientPop, "clients");
  NodeId edge = topo.add_node(net::NodeKind::kRouter, "isp-edge");
  NodeId srv_x = topo.add_node(net::NodeKind::kCdnServer, "cdnX-srv");
  NodeId srv_y = topo.add_node(net::NodeKind::kCdnServer, "cdnY-srv");
  NodeId origin_x = topo.add_node(net::NodeKind::kOrigin, "cdnX-origin");
  NodeId origin_y = topo.add_node(net::NodeKind::kOrigin, "cdnY-origin");

  topo.add_link(edge, client, gbps(1), milliseconds(5));
  LinkId x_at_b =
      topo.add_link(srv_x, edge, config.capacity_b, milliseconds(3), "X@B");
  LinkId x_at_c =
      topo.add_link(srv_x, edge, config.capacity_cx, milliseconds(12), "X@C");
  LinkId y_at_c =
      topo.add_link(srv_y, edge, config.capacity_cy, milliseconds(12), "Y@C");
  topo.add_link(origin_x, srv_x, mbps(500), milliseconds(15));
  topo.add_link(origin_y, srv_y, mbps(500), milliseconds(15));

  net::Network network(topo);
  net::TransferManager transfers(sched, network);
  net::Routing routing(topo);
  IspId isp(0);
  net::PeeringBook peering(topo);

  app::ContentCatalog catalog =
      app::ContentCatalog::videos(24, config.video_duration, 0.8);
  app::Cdn cdn_x(CdnId(0), "cdn-X", origin_x);
  app::Cdn cdn_y(CdnId(1), "cdn-Y", origin_y);
  ServerId sx = cdn_x.add_server(srv_x, x_at_b, 32);
  ServerId sy = cdn_y.add_server(srv_y, y_at_c, 32);
  peering.add(isp, cdn_x.id(), x_at_b, "X@B");
  PeeringId peer_xc = peering.add(isp, cdn_x.id(), x_at_c, "X@C");
  peering.add(isp, cdn_y.id(), y_at_c, "Y@C");
  cdn_x.set_peering_book(&peering);
  cdn_y.set_peering_book(&peering);
  {
    std::vector<ContentId> all;
    for (std::size_t i = 0; i < catalog.size(); ++i)
      all.push_back(ContentId(static_cast<ContentId::rep_type>(i)));
    cdn_x.warm_cache(sx, all);
    cdn_y.warm_cache(sy, all);
  }
  app::CdnDirectory directory;
  directory.add(&cdn_x);
  directory.add(&cdn_y);

  // --- two AppP control planes, one InfP --------------------------------------
  core::ProviderRegistry registry;
  ProviderId appp1_id =
      registry.register_provider(core::ProviderKind::kAppP, "appp-large");
  ProviderId appp2_id =
      registry.register_provider(core::ProviderKind::kAppP, "appp-small");
  ProviderId infp_id =
      registry.register_provider(core::ProviderKind::kInfP, "access-isp");

  const std::vector<BitsPerSecond> ladder{kbps(300), kbps(700), mbps(1.5),
                                          mbps(3)};
  control::AppPConfig appp_cfg;
  appp_cfg.control_period = 10.0;
  appp_cfg.qoe_window = 60.0;
  appp_cfg.bad_qoe_buffering = 0.03;
  appp_cfg.bad_qoe_bitrate = mbps(1.2);
  appp_cfg.intended_bitrate = ladder.back();
  control::AppPController appp1(sched, network, directory, appp1_id, appp_cfg);
  control::AppPController appp2(sched, network, directory, appp2_id, appp_cfg);

  control::InfPConfig infp_cfg;
  infp_cfg.control_period = 120.0;
  control::InfPController infp(sched, network, routing, peering, isp, infp_id,
                               {}, infp_cfg);

  // Wire each participating AppP; the ISP merges all subscribed A2I feeds.
  if (config.appp1_eona) wire_eona(registry, appp1, infp);
  if (config.appp2_eona) wire_eona(registry, appp2, infp);
  appp1.set_eona_enabled(config.appp1_eona);
  appp2.set_eona_enabled(config.appp2_eona);
  infp.set_eona_enabled(config.appp1_eona || config.appp2_eona);
  appp1.start();
  appp2.start();
  infp.start();

  // --- per-tenant workloads ------------------------------------------------------
  app::SessionPool pool1(sched, &network);
  app::SessionPool pool2(sched, &network);
  app::PlayerConfig player_cfg;
  player_cfg.ladder = ladder;
  SessionId::rep_type next_session = 0;
  sim::Rng content_rng = rng.fork();

  auto spawner = [&](control::AppPController& appp, app::SessionPool& pool) {
    return [&] {
      SessionId session(next_session++);
      telemetry::Dimensions dims;
      dims.isp = isp;
      ContentId content = catalog.sample(content_rng);
      pool.spawn([&, session, dims,
                  content](app::VideoPlayer::DoneCallback done) {
        return std::make_unique<app::VideoPlayer>(
            sched, transfers, network, routing, directory, appp.brain(),
            &appp.collector(), player_cfg, session, dims, client,
            catalog.item(content), qoe::EngagementModel{}, std::move(done));
      });
    };
  };
  TimePoint arrivals_end = config.run_duration - config.video_duration;
  app::PoissonArrivals arrivals1(sched, rng.fork(), {{0.0, config.rate1}},
                                 arrivals_end, spawner(appp1, pool1));
  app::PoissonArrivals arrivals2(sched, rng.fork(), {{0.0, config.rate2}},
                                 arrivals_end, spawner(appp2, pool2));

  // --- run --------------------------------------------------------------------------
  sched.run_until(config.run_duration);
  arrivals1.stop();
  arrivals2.stop();
  pool1.abort_all();
  pool2.abort_all();
  sched.run_until(config.run_duration + 1.0);

  // --- summarise -----------------------------------------------------------------------
  FairnessResult result;
  result.appp1 = QoeSummary::from(pool1.summaries());
  result.appp2 = QoeSummary::from(pool2.summaries());
  result.engagement_gap =
      std::abs(result.appp1.mean_engagement - result.appp2.mean_engagement);
  const control::DecisionTrace& trace = infp.egress_trace(cdn_x.id());
  result.isp_switches =
      trace.changes_between(config.measure_from, arrivals_end);
  result.green_path =
      trace.value_at(arrivals_end) == static_cast<int>(peer_xc.value());
  return result;
}

}  // namespace eona::scenarios
