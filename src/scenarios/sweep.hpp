// Multi-run scenario sweeps: {seed, mode} x overrides fanned out across a
// SweepRunner pool, collated into one JSON document.
//
// A sweep's jobs are fully independent simulations (each builds its own
// scheduler, network and RNG from its seed), so they parallelize without
// any shared state; collation orders results by job index, which makes the
// collated JSON byte-identical no matter how many threads ran the jobs or
// in what order they finished (pinned by tests/sim_sweep_test.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "eona/json.hpp"

namespace eona::scenarios {

struct SweepSpec {
  std::string scenario;                          ///< lab.hpp scenario name
  std::vector<std::uint64_t> seeds;              ///< outer axis; >= 1 entry
  /// Inner axis of mode-like values applied as `mode_key=<value>` per run;
  /// empty means a single run per seed with the scenario's default.
  std::vector<std::string> modes;
  std::string mode_key = "mode";
  std::map<std::string, std::string> overrides;  ///< applied to every run
  std::size_t threads = 0;                       ///< 0 = hardware threads
};

/// Expand the spec's {seed} x {mode} grid, run every job, and collate:
///   {"scenario": ..., "run_count": N, "runs": [ {seed, ...result...} ]}
/// The runs array is ordered seed-major, mode-minor -- independent of
/// thread count and completion order. Throws ConfigError on bad specs and
/// rethrows the first failing run's error.
///
/// When `trace_out` is non-null every job records its own JSONL event
/// trace (each into a private buffer, so jobs stay lock-free), and the
/// buffers are concatenated into `*trace_out` in job order -- like the
/// runs array, byte-identical for any thread count.
[[nodiscard]] core::JsonValue run_sweep(const SweepSpec& spec,
                                        std::string* trace_out = nullptr);

}  // namespace eona::scenarios
