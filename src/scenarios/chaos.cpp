#include "scenarios/chaos.hpp"

#include <map>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/error.hpp"

namespace eona::sim {

namespace {

FaultAction::Kind parse_kind(const std::string& word,
                             const std::string& clause) {
  if (word == "down") return FaultAction::Kind::kLinkDown;
  if (word == "up") return FaultAction::Kind::kLinkUp;
  if (word == "brownout") return FaultAction::Kind::kBrownout;
  if (word == "crash") return FaultAction::Kind::kServerCrash;
  if (word == "restart") return FaultAction::Kind::kServerRestart;
  throw ConfigError("fault plan: unknown kind '" + word + "' in '" + clause +
                    "'");
}

const char* kind_name(FaultAction::Kind kind) {
  switch (kind) {
    case FaultAction::Kind::kLinkDown: return "link_down";
    case FaultAction::Kind::kLinkUp: return "link_up";
    case FaultAction::Kind::kBrownout: return "brownout";
    case FaultAction::Kind::kServerCrash: return "server_crash";
    case FaultAction::Kind::kServerRestart: return "server_restart";
  }
  return "unknown";
}

double parse_number(const std::string& text, const std::string& clause) {
  try {
    std::size_t used = 0;
    double value = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw ConfigError("fault plan: bad number '" + text + "' in '" + clause +
                      "'");
  }
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(';', start);
    if (end == std::string::npos) end = spec.size();
    std::string clause = spec.substr(start, end - start);
    start = end + 1;
    if (clause.empty()) continue;

    FaultAction action;
    std::size_t colon = clause.find(':');
    if (colon == std::string::npos)
      throw ConfigError("fault plan: missing ':' in '" + clause + "'");
    action.kind = parse_kind(clause.substr(0, colon), clause);

    // Targets (link names) legitimately contain '@' ("X@B"), so the time
    // separator is the LAST '@' of the clause.
    std::string rest = clause.substr(colon + 1);
    std::size_t at = rest.rfind('@');
    if (at == std::string::npos || at == 0)
      throw ConfigError("fault plan: missing '@time' in '" + clause + "'");
    action.target = rest.substr(0, at);

    std::string tail = rest.substr(at + 1);
    std::size_t factor_sep = tail.find(':');
    if (factor_sep != std::string::npos) {
      if (action.kind != FaultAction::Kind::kBrownout)
        throw ConfigError("fault plan: factor only valid for brownout in '" +
                          clause + "'");
      action.factor = parse_number(tail.substr(factor_sep + 1), clause);
      tail = tail.substr(0, factor_sep);
    }
    action.at = parse_number(tail, clause);

    if (action.at < 0.0)
      throw ConfigError("fault plan: negative time in '" + clause + "'");
    if (action.kind == FaultAction::Kind::kBrownout &&
        (action.factor <= 0.0 || action.factor > 1.0))
      throw ConfigError("fault plan: brownout factor must be in (0, 1] in '" +
                        clause + "'");
    plan.actions.push_back(std::move(action));
  }
  return plan;
}

ChaosEngine::ChaosEngine(Scheduler& sched, EventBus& bus,
                         net::Network& network,
                         const app::CdnDirectory* cdns)
    : sched_(sched),
      bus_(bus),
      network_(network),
      cdns_(cdns),
      gate_(sched.open_gate()) {}

ChaosEngine::~ChaosEngine() { sched_.close_gate(gate_); }

ChaosEngine::Resolved ChaosEngine::resolve(const FaultAction& action) const {
  Resolved r;
  r.kind = action.kind;
  r.factor = action.factor;
  if (action.kind == FaultAction::Kind::kServerCrash ||
      action.kind == FaultAction::Kind::kServerRestart) {
    std::size_t slash = action.target.find('/');
    if (slash == std::string::npos)
      throw ConfigError("fault plan: server target must be 'cdn/index', got '" +
                        action.target + "'");
    std::string cdn_name = action.target.substr(0, slash);
    std::size_t index = static_cast<std::size_t>(
        parse_number(action.target.substr(slash + 1), action.target));
    if (cdns_ == nullptr)
      throw ConfigError("fault plan: server fault but no CDN directory");
    for (app::Cdn* cdn : cdns_->all()) {
      if (cdn->name() != cdn_name) continue;
      const auto& servers = cdn->servers();
      if (index >= servers.size())
        throw ConfigError("fault plan: cdn '" + cdn_name + "' has no server " +
                          std::to_string(index));
      r.cdn = cdn;
      r.server = servers[index].id;
      r.link = servers[index].egress;
      return r;
    }
    throw ConfigError("fault plan: unknown cdn '" + cdn_name + "'");
  }
  // Link kinds: resolve by topology link name (exact match).
  for (const net::Link& link : network_.topology().links()) {
    if (link.name == action.target) {
      r.link = link.id;
      return r;
    }
  }
  throw ConfigError("fault plan: unknown link '" + action.target + "'");
}

void ChaosEngine::schedule(const FaultPlan& plan) {
  // Group same-time actions (plan order preserved within a group): one
  // scheduler event and one Network batch per instant, so e.g. a scheduled
  // partition lands as a single consistent topology mutation.
  std::map<TimePoint, std::vector<Resolved>> groups;
  for (const FaultAction& action : plan.actions)
    groups[action.at].push_back(resolve(action));
  for (auto& [at, group] : groups)
    sched_.post_at(at, gate_,
                   [this, group = std::move(group)] { execute(group); });
}

void ChaosEngine::execute(const std::vector<Resolved>& group) {
  {
    // All mutations of the instant land as one batch: one rate recompute,
    // one consistent dirty set for the incremental solver.
    net::Network::Batch batch(network_);
    for (const Resolved& r : group) {
      switch (r.kind) {
        case FaultAction::Kind::kLinkDown:
          network_.set_link_up(r.link, false);
          break;
        case FaultAction::Kind::kLinkUp:
          network_.set_link_up(r.link, true);
          break;
        case FaultAction::Kind::kBrownout:
          network_.set_link_capacity(
              r.link, r.factor * network_.configured_link_capacity(r.link));
          break;
        case FaultAction::Kind::kServerCrash:
          r.cdn->set_online(r.server, false);
          network_.set_link_up(r.link, false);
          break;
        case FaultAction::Kind::kServerRestart:
          r.cdn->set_online(r.server, true);
          network_.set_link_up(r.link, true);
          break;
      }
    }
  }
  // Publish after the batch committed: subscribers (EONA InfP failover,
  // monitors, the trace) observe the post-fault data plane, and any reroutes
  // they issue run before the stranded-transfer sweep fires.
  for (const Resolved& r : group) {
    ++fault_count_;
    bus_.publish(FaultEvent{sched_.now(), kind_name(r.kind), r.link,
                            r.factor});
  }
}

}  // namespace eona::sim
