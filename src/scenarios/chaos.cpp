#include "scenarios/chaos.hpp"

#include <map>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "eona/exchange.hpp"
#include "scenarios/world.hpp"

namespace eona::sim {

namespace {

/// Every parse error names the offending token, the clause it sits in, and
/// the clause's byte position (1-based) in the plan string, so a bad clause
/// in a long plan is findable -- and never silently skipped.
[[noreturn]] void parse_fail(const std::string& what, const std::string& clause,
                             std::size_t pos) {
  throw ConfigError("fault plan: " + what + " in '" + clause +
                    "' at position " + std::to_string(pos + 1));
}

FaultAction::Kind parse_kind(const std::string& word,
                             const std::string& clause, std::size_t pos) {
  if (word == "down") return FaultAction::Kind::kLinkDown;
  if (word == "up") return FaultAction::Kind::kLinkUp;
  if (word == "brownout") return FaultAction::Kind::kBrownout;
  if (word == "crash") return FaultAction::Kind::kServerCrash;
  if (word == "restart") return FaultAction::Kind::kServerRestart;
  parse_fail("unknown kind '" + word + "'", clause, pos);
}

const char* kind_name(FaultAction::Kind kind) {
  switch (kind) {
    case FaultAction::Kind::kLinkDown: return "link_down";
    case FaultAction::Kind::kLinkUp: return "link_up";
    case FaultAction::Kind::kBrownout: return "brownout";
    case FaultAction::Kind::kServerCrash: return "server_crash";
    case FaultAction::Kind::kServerRestart: return "server_restart";
    case FaultAction::Kind::kExchangeCrash: return "exchange_crash";
    case FaultAction::Kind::kExchangeRestart: return "exchange_restart";
  }
  return "unknown";
}

double parse_number(const std::string& text, const std::string& clause,
                    std::size_t pos) {
  try {
    std::size_t used = 0;
    double value = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    parse_fail("bad number '" + text + "'", clause, pos);
  }
}

/// resolve()-time numbers (server indices) have no plan position; reuse the
/// old positionless message.
double parse_number(const std::string& text, const std::string& clause) {
  try {
    std::size_t used = 0;
    double value = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw ConfigError("fault plan: bad number '" + text + "' in '" + clause +
                      "'");
  }
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(';', start);
    if (end == std::string::npos) end = spec.size();
    const std::size_t pos = start;  // clause's byte offset in the plan
    std::string clause = spec.substr(start, end - start);
    start = end + 1;
    // Empty clauses (";;", trailing ';') are CLI artifacts, not plans --
    // skipped so "" and ";;" both yield the empty plan.
    if (clause.empty()) continue;

    FaultAction action;
    std::size_t colon = clause.find(':');
    if (colon == std::string::npos)
      parse_fail("missing ':'", clause, pos);
    action.kind = parse_kind(clause.substr(0, colon), clause, pos);

    // Targets (link names) legitimately contain '@' ("X@B"), so the time
    // separator is the LAST '@' of the clause.
    std::string rest = clause.substr(colon + 1);
    std::size_t at = rest.rfind('@');
    if (at == std::string::npos || at == 0)
      parse_fail("missing '@time'", clause, pos);
    action.target = rest.substr(0, at);

    std::string tail = rest.substr(at + 1);
    std::size_t factor_sep = tail.find(':');
    if (factor_sep != std::string::npos) {
      if (action.kind != FaultAction::Kind::kBrownout)
        parse_fail("factor only valid for brownout", clause, pos);
      action.factor = parse_number(tail.substr(factor_sep + 1), clause, pos);
      tail = tail.substr(0, factor_sep);
    }
    action.at = parse_number(tail, clause, pos);

    if (action.at < 0.0)
      parse_fail("negative time", clause, pos);
    if (action.kind == FaultAction::Kind::kBrownout &&
        (action.factor <= 0.0 || action.factor > 1.0))
      parse_fail("brownout factor must be in (0, 1]", clause, pos);
    // The broker is addressed by the literal target "exchange"; the kind
    // words stay crash/restart, shared with the server faults.
    if (action.target == "exchange") {
      if (action.kind == FaultAction::Kind::kServerCrash)
        action.kind = FaultAction::Kind::kExchangeCrash;
      else if (action.kind == FaultAction::Kind::kServerRestart)
        action.kind = FaultAction::Kind::kExchangeRestart;
      else
        parse_fail("only crash/restart apply to the exchange", clause, pos);
    }
    plan.actions.push_back(std::move(action));
  }
  return plan;
}

ChaosEngine::ChaosEngine(Scheduler& sched, EventBus& bus,
                         net::Network& network,
                         const app::CdnDirectory* cdns)
    : sched_(sched),
      bus_(bus),
      network_(network),
      cdns_(cdns),
      gate_(sched.open_gate()) {}

ChaosEngine::~ChaosEngine() { sched_.close_gate(gate_); }

ChaosEngine::Resolved ChaosEngine::resolve(const FaultAction& action) const {
  Resolved r;
  r.kind = action.kind;
  r.factor = action.factor;
  if (action.kind == FaultAction::Kind::kExchangeCrash ||
      action.kind == FaultAction::Kind::kExchangeRestart) {
    if (exchange_ == nullptr)
      throw ConfigError("fault plan: exchange fault but no exchange attached");
    return r;  // no link: the broker is not a topology element
  }
  if (action.kind == FaultAction::Kind::kServerCrash ||
      action.kind == FaultAction::Kind::kServerRestart) {
    std::size_t slash = action.target.find('/');
    if (slash == std::string::npos)
      throw ConfigError("fault plan: server target must be 'cdn/index', got '" +
                        action.target + "'");
    std::string cdn_name = action.target.substr(0, slash);
    std::size_t index = static_cast<std::size_t>(
        parse_number(action.target.substr(slash + 1), action.target));
    if (cdns_ == nullptr)
      throw ConfigError("fault plan: server fault but no CDN directory");
    for (app::Cdn* cdn : cdns_->all()) {
      if (cdn->name() != cdn_name) continue;
      const auto& servers = cdn->servers();
      if (index >= servers.size())
        throw ConfigError("fault plan: cdn '" + cdn_name + "' has no server " +
                          std::to_string(index));
      r.cdn = cdn;
      r.server = servers[index].id;
      r.link = servers[index].egress;
      return r;
    }
    throw ConfigError("fault plan: unknown cdn '" + cdn_name + "'");
  }
  // Link kinds: resolve by topology link name (exact match).
  for (const net::Link& link : network_.topology().links()) {
    if (link.name == action.target) {
      r.link = link.id;
      return r;
    }
  }
  throw ConfigError("fault plan: unknown link '" + action.target + "'");
}

void ChaosEngine::schedule(const FaultPlan& plan) {
  // Group same-time actions (plan order preserved within a group): one
  // scheduler event and one Network batch per instant, so e.g. a scheduled
  // partition lands as a single consistent topology mutation.
  std::map<TimePoint, std::vector<Resolved>> groups;
  for (const FaultAction& action : plan.actions)
    groups[action.at].push_back(resolve(action));
  for (auto& [at, group] : groups)
    sched_.post_at(at, gate_,
                   [this, group = std::move(group)] { execute(group); });
}

void ChaosEngine::execute(const std::vector<Resolved>& group) {
  {
    // All mutations of the instant land as one batch: one rate recompute,
    // one consistent dirty set for the incremental solver.
    net::Network::Batch batch(network_);
    for (const Resolved& r : group) {
      switch (r.kind) {
        case FaultAction::Kind::kLinkDown:
          network_.set_link_up(r.link, false);
          break;
        case FaultAction::Kind::kLinkUp:
          network_.set_link_up(r.link, true);
          break;
        case FaultAction::Kind::kBrownout:
          network_.set_link_capacity(
              r.link, r.factor * network_.configured_link_capacity(r.link));
          break;
        case FaultAction::Kind::kServerCrash:
          r.cdn->set_online(r.server, false);
          network_.set_link_up(r.link, false);
          break;
        case FaultAction::Kind::kServerRestart:
          r.cdn->set_online(r.server, true);
          network_.set_link_up(r.link, true);
          break;
        case FaultAction::Kind::kExchangeCrash:
          exchange_->crash();
          break;
        case FaultAction::Kind::kExchangeRestart:
          exchange_->restart();
          break;
      }
    }
  }
  // Publish after the batch committed: subscribers (EONA InfP failover,
  // monitors, the trace) observe the post-fault data plane, and any reroutes
  // they issue run before the stranded-transfer sweep fires. Broker faults
  // carry an invalid LinkId; link-keyed subscribers ignore them.
  for (const Resolved& r : group) {
    ++fault_count_;
    bus_.publish(FaultEvent{sched_.now(), kind_name(r.kind), r.link,
                            r.factor});
  }
}

std::unique_ptr<ChaosEngine> schedule_faults(World& world,
                                             const std::string& spec) {
  if (spec.empty()) return nullptr;
  auto chaos = std::make_unique<ChaosEngine>(world.sched(), world.bus(),
                                             world.network(),
                                             &world.directory());
  if (world.has_exchange()) chaos->set_exchange(&world.exchange());
  chaos->schedule(FaultPlan::parse(spec));
  return chaos;
}

}  // namespace eona::sim
