// Figure 5 scenario: two independent control loops chase each other.
//
// One ISP peers with CDN X at a cheap local point B (small) and at a public
// IXP C (big); CDN Y is reachable only at C (and is capacity-limited). The
// AppP steers all sessions to one primary CDN; the ISP picks X's ingress
// point.
//
// Baseline: demand on X exceeds B; QoE tanks; the AppP flees to Y; Y can't
// carry the load; the ISP meanwhile drifts X's ingress back to the now-idle
// cheap point B; the AppP returns to X; repeat -- the paper's infinite
// cycle. The uncongested green path (X via C) is never found because
// neither loop knows what the other needs.
//
// EONA: the A2I traffic forecast tells the ISP X's intended volume doesn't
// fit B, so it selects C and holds; the I2A peering status tells the AppP
// the interconnect (not the CDN) was the problem and that C has headroom,
// so it stays on X. Green path, first try.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "scenarios/common.hpp"
#include "sim/timeseries.hpp"
#include "telemetry/column_store.hpp"

namespace eona::scenarios {

struct OscillationConfig {
  std::uint64_t seed = 1;
  ControlMode mode = ControlMode::kBaseline;
  BitsPerSecond capacity_b = mbps(45);    ///< X at local point B (cheap)
  BitsPerSecond capacity_cx = mbps(400);  ///< X at the IXP C
  BitsPerSecond capacity_cy = mbps(50);   ///< Y at the IXP C
  double arrival_rate = 0.25;             ///< sessions/s
  Duration video_duration = 180.0;
  TimePoint run_duration = 1500.0;
  Duration appp_period = 10.0;
  Duration infp_period = 120.0;
  // --- dampening ablation (E10) ---
  Duration appp_dwell = 0.0;
  Duration infp_dwell = 0.0;
  // --- staleness (E8) ---
  Duration a2i_delay = 0.0;
  Duration i2a_delay = 0.0;
  // --- export policies (E7 interface-width sweeps) ---
  core::A2IPolicy a2i_policy{};
  core::I2APolicy i2a_policy{};
  /// Warmup before oscillation statistics are counted.
  TimePoint measure_from = 300.0;
  /// When set, receives the run's JSONL event trace.
  /// Optional chaos plan (FaultPlan grammar; see scenarios/chaos.hpp).
  /// Empty = no fault injection, byte-identical to the plan-free build.
  std::string faults;
  sim::TraceWriter* trace = nullptr;
  /// When set, a StoreRecorder feeds this columnar store the run's event
  /// stream (eona_lab --store=FILE dumps it as queryable rows).
  telemetry::ColumnStore* store = nullptr;
  /// When non-null, accumulates run-cost counters (scheduler events).
  RunPerf* perf = nullptr;
};

struct OscillationResult {
  QoeSummary qoe;
  // --- oscillation statistics (after measure_from) ---
  std::size_t appp_switches = 0;   ///< primary-CDN changes
  std::size_t infp_switches = 0;   ///< X-egress changes
  std::size_t appp_reversals = 0;  ///< A->B->A flips over the full run
  std::size_t infp_reversals = 0;
  bool cycling = false;      ///< joint state entered a repeating cycle
  bool converged = false;    ///< joint state constant over the final epochs
  TimePoint settled_at = 0.0;  ///< last change of either knob
  bool green_path = false;   ///< final state == (primary X, X via C)
  sim::MetricSet metrics;    ///< series: primary_cdn, x_egress, mean_bitrate
};

[[nodiscard]] OscillationResult run_oscillation(const OscillationConfig& config);

}  // namespace eona::scenarios
