#include "scenarios/broker_outage.hpp"

#include <array>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "app/content_catalog.hpp"
#include "app/video_player.hpp"
#include "app/workload.hpp"
#include "scenarios/chaos.hpp"
#include "scenarios/world.hpp"

namespace eona::scenarios {

namespace {
constexpr std::size_t kIsps = 2;
constexpr std::size_t kTenants = 3;  ///< pre-outage tenants (joiner is #3)
}  // namespace

BrokerOutageResult run_broker_outage(const BrokerOutageConfig& config) {
  sim::World::Builder b(config.seed);
  b.attach_trace(config.trace);
  b.attach_store(config.store);

  // --- the federation plane (E19's topology, one tenant heavy) --------------
  net::Topology& topo = b.topology();
  std::array<NodeId, kIsps> clients{};
  std::array<NodeId, kIsps> edges{};
  std::array<LinkId, kIsps> access{};
  for (std::size_t k = 0; k < kIsps; ++k) {
    std::string isp_name = "isp" + std::to_string(k);
    clients[k] =
        topo.add_node(net::NodeKind::kClientPop, isp_name + "-clients");
    edges[k] = topo.add_node(net::NodeKind::kRouter, isp_name + "-edge");
    access[k] = topo.add_link(edges[k], clients[k], config.access_capacity,
                              milliseconds(5), isp_name + "-access");
  }
  std::array<NodeId, kTenants> srv{};
  std::array<NodeId, kTenants> origin{};
  std::array<std::array<LinkId, kTenants>, kIsps> ingress{};
  for (std::size_t i = 0; i < kTenants; ++i) {
    std::string name = "cdn" + std::to_string(i);
    srv[i] = topo.add_node(net::NodeKind::kCdnServer, name + "-srv");
    origin[i] = topo.add_node(net::NodeKind::kOrigin, name + "-origin");
    topo.add_link(origin[i], srv[i], mbps(500), milliseconds(15));
    for (std::size_t k = 0; k < kIsps; ++k) {
      ingress[k][i] = topo.add_link(
          srv[i], edges[k], config.pool / static_cast<double>(kTenants),
          milliseconds(8), name + "@isp" + std::to_string(k));
    }
  }

  b.build_network();
  net::PeeringBook& peering = b.world().peering();
  b.with_catalog(24, config.video_duration, 0.8);
  app::ContentCatalog& catalog = b.world().catalog();
  std::array<app::Cdn*, kTenants> cdns{};
  for (std::size_t i = 0; i < kTenants; ++i) {
    std::string name = "cdn" + std::to_string(i);
    cdns[i] = &b.add_cdn_at(name, origin[i]);
    ServerId sid = cdns[i]->add_server(srv[i], ingress[0][i], 48);
    std::vector<ContentId> all;
    for (std::size_t c = 0; c < catalog.size(); ++c)
      all.push_back(ContentId(static_cast<ContentId::rep_type>(c)));
    cdns[i]->warm_cache(sid, all);
    cdns[i]->set_peering_book(&peering);
  }
  for (std::size_t k = 0; k < kIsps; ++k)
    for (std::size_t i = 0; i < kTenants; ++i)
      peering.add(IspId(static_cast<IspId::rep_type>(k)), cdns[i]->id(),
                  ingress[k][i],
                  "cdn" + std::to_string(i) + "@isp" + std::to_string(k));

  // --- control planes -------------------------------------------------------
  const std::vector<BitsPerSecond> ladder{kbps(300), kbps(700), mbps(1.5),
                                          mbps(3)};
  control::AppPConfig appp_cfg;
  appp_cfg.control_period = 10.0;
  appp_cfg.qoe_window = 60.0;
  appp_cfg.intended_bitrate = ladder.back();
  // Pinned tenants (no CDN switching): the forecast -> egress-share loop is
  // the only inter-tenant coupling, as in E19.
  appp_cfg.stalls_before_switch = 1'000'000;
  appp_cfg.poor_throughput_rung = 0;
  appp_cfg.bad_qoe_buffering = 2.0;
  // The survivability knob: robust fetchers keep last-known-good data (with
  // a finite staleness deadline, so degradation is *visible* to the
  // controller); the naive arm clears its view on every miss.
  appp_cfg.robust_fetch = config.degraded;
  appp_cfg.i2a_retry.freshness_deadline = 90.0;

  b.add_exchange();
  core::Exchange& exchange = b.world().exchange();
  std::array<control::AppPController*, kTenants> appps{};
  for (std::size_t i = 0; i < kTenants; ++i) {
    control::AppPConfig cfg = appp_cfg;
    if (i == 0) cfg.forecast_exaggeration = config.exaggeration;
    appps[i] = &b.add_appp("appp" + std::to_string(i), cfg);
  }
  // Broker always on here: E20 must show containment *across* the outage.
  // Quotas are negotiated per tenant: the heavy tenant carries most of the
  // viewers so it holds half the pool; the liar gets a quarter no matter
  // what it claims. The informed (forecast-driven) egress split tracks
  // these shares -- which is exactly what the naive equal-split fallback
  // loses when the broker dies.
  exchange.set_egress_reference(config.pool);
  const std::array<double, kTenants> quota{0.2, 0.6, 0.2};
  for (std::size_t i = 0; i < kTenants; ++i)
    exchange.set_quota(appps[i]->id(), core::TenantQuota{quota[i]});

  control::InfPConfig infp_cfg;
  infp_cfg.control_period = 30.0;
  infp_cfg.egress_share.enabled = true;
  infp_cfg.egress_share.pool = config.pool;
  infp_cfg.egress_share.min_share = 0.05;
  infp_cfg.robust_fetch = config.degraded;
  infp_cfg.a2i_retry.freshness_deadline = 90.0;
  std::array<control::InfPController*, kIsps> infps{};
  for (std::size_t k = 0; k < kIsps; ++k)
    infps[k] = &b.add_infp("infp" + std::to_string(k),
                           IspId(static_cast<IspId::rep_type>(k)), {access[k]},
                           infp_cfg);

  for (std::size_t i = 0; i < kTenants; ++i)
    for (std::size_t k = 0; k < kIsps; ++k) b.wire_tenant(i, k);

  for (std::size_t i = 0; i < kTenants; ++i) {
    appps[i]->set_primary_cdn(cdns[i]->id(), "pinned");
    appps[i]->start();
  }
  for (std::size_t k = 0; k < kIsps; ++k) {
    infps[k]->set_eona_enabled(true);
    infps[k]->start();
  }

  // --- workloads (tenant 1 heavy; pool 3 reserved for the joiner) -----------
  std::array<app::SessionPool*, kTenants + 1> pools{};
  for (std::size_t i = 0; i < kTenants + 1; ++i) pools[i] = &b.add_session_pool();
  std::unique_ptr<sim::World> world = b.build();
  sim::Scheduler& sched = world->sched();

  app::PlayerConfig player_cfg;
  player_cfg.ladder = ladder;
  SessionId::rep_type next_session = 0;
  std::array<std::size_t, kTenants + 1> isp_counter{};
  sim::Rng content_rng = world->rng().fork();

  auto spawner = [&](std::size_t tenant) {
    return [&, tenant] {
      SessionId session(next_session++);
      std::size_t k = isp_counter[tenant]++ % kIsps;
      telemetry::Dimensions dims;
      dims.isp = IspId(static_cast<IspId::rep_type>(k));
      ContentId content = catalog.sample(content_rng);
      pools[tenant]->spawn_player(
          sched, world->transfers(), world->network(), world->routing(),
          world->directory(), world->appp(tenant).brain(),
          &world->appp(tenant).collector(), player_cfg, session, dims,
          clients[k], catalog.item(content), qoe::EngagementModel{});
    };
  };
  TimePoint arrivals_end = config.run_duration - config.video_duration;
  std::vector<std::unique_ptr<app::PoissonArrivals>> arrivals;
  for (std::size_t i = 0; i < kTenants; ++i) {
    double rate = i == 1 ? config.heavy_arrival_rate : config.arrival_rate;
    arrivals.push_back(std::make_unique<app::PoissonArrivals>(
        sched, world->rng().fork(),
        std::vector<app::ArrivalPhase>{{0.0, rate}}, arrivals_end,
        spawner(i)));
  }

  // --- chaos: the broker dies ------------------------------------------------
  sim::ChaosEngine chaos(sched, world->bus(), world->network(),
                         &world->directory());
  chaos.set_exchange(&world->exchange());
  sim::FaultPlan plan;
  if (!config.faults.empty()) {
    plan = sim::FaultPlan::parse(config.faults);
  } else if (config.crash_at > 0.0) {
    sim::FaultAction crash;
    crash.kind = sim::FaultAction::Kind::kExchangeCrash;
    crash.at = config.crash_at;
    crash.target = "exchange";
    plan.actions.push_back(crash);
    if (config.restart_at > config.crash_at) {
      sim::FaultAction restart = crash;
      restart.kind = sim::FaultAction::Kind::kExchangeRestart;
      restart.at = config.restart_at;
      plan.actions.push_back(restart);
    }
  }
  chaos.schedule(plan);

  // --- mid-run tenant churn --------------------------------------------------
  std::unique_ptr<app::PoissonArrivals> joiner_arrivals;
  if (config.churn_join_at > 0.0) {
    sched.post_at(config.churn_join_at, [&] {
      control::AppPConfig cfg = appp_cfg;  // honest joiner
      control::AppPController& joiner =
          world->churn_add_appp("appp3", cfg, core::TenantQuota{0.2});
      for (std::size_t k = 0; k < kIsps; ++k)
        world->churn_wire(kTenants, k);
      // The joiner rides tenant 2's CDN (a new ingress footprint cannot be
      // built mid-run; sharing one is how real tenants onboard).
      joiner.set_primary_cdn(cdns[2]->id(), "pinned");
      joiner.start();
      if (arrivals_end > sched.now())
        joiner_arrivals = std::make_unique<app::PoissonArrivals>(
            sched, world->rng().fork(),
            std::vector<app::ArrivalPhase>{{0.0, config.arrival_rate}},
            arrivals_end, spawner(kTenants));
    });
  }
  if (config.churn_leave_at > 0.0) {
    sched.post_at(config.churn_leave_at,
                  [&] { world->churn_unwire(2, 1); });
  }

  // --- rebuffer sampling (1 Hz, integrated from the crash on) ----------------
  const Duration sample_dt = 1.0;
  BrokerOutageResult result;
  // Containment probe: the liar's realised egress share once the plane has
  // settled after the restart (every backoff horizon is < 80 s) but before
  // tenant churn renormalizes the quota denominators.
  TimePoint probe_at = config.restart_at > config.crash_at
                           ? config.restart_at + 80.0
                           : config.run_duration - 1.0;
  sched.post_at(probe_at, [&] {
    result.liar_share = 0.0;
    for (std::size_t k = 0; k < kIsps; ++k)
      result.liar_share += infps[k]->egress_share_of(cdns[0]->id()) /
                           static_cast<double>(kIsps);
  });
  sim::PeriodicTask sampler(sched, sample_dt, [&] {
    if (sched.now() < config.crash_at) return;
    std::size_t stalled = 0;
    for (app::SessionPool* pool : pools) stalled += pool->stalled_count();
    result.rebuffer_seconds += static_cast<double>(stalled) * sample_dt;
  });

  // --- run -------------------------------------------------------------------
  sched.run_until(config.run_duration);
  for (auto& a : arrivals) a->stop();
  if (joiner_arrivals != nullptr) joiner_arrivals->stop();
  for (app::SessionPool* pool : pools) pool->abort_all();
  sched.run_until(config.run_duration + 1.0);
  world->auditor().finalize();

  // --- summarise -------------------------------------------------------------
  if (config.perf != nullptr) {
    config.perf->events += sched.events_fired();
    config.perf->add_exchange(world->exchange());
  }
  std::vector<app::SessionSummary> original;
  for (std::size_t i = 0; i < kTenants; ++i)
    for (const auto& s : pools[i]->summaries()) original.push_back(s);
  result.qoe = QoeSummary::from(original);
  result.heavy = QoeSummary::from(pools[1]->summaries());
  result.joiner = QoeSummary::from(pools[kTenants]->summaries());

  // Reattach telemetry: every controller bound before the crash must have
  // re-registered within the policy's horizon of the restart.
  core::ReattachPolicy policy;  // all controllers run the default schedule
  result.reattach_horizon = policy.horizon();
  auto fold_port = [&](const core::ExchangeEndpoint& port) {
    result.reattaches += port.reattach_count();
    result.reattach_attempts += port.reattach_attempts();
    if (port.detached_seconds() > result.detached_seconds)
      result.detached_seconds = port.detached_seconds();
    if (port.reattach_count() > 0) {
      double latency = port.last_reattach_at() - config.restart_at;
      if (latency > result.time_to_reattach) result.time_to_reattach = latency;
    }
  };
  for (std::size_t i = 0; i < kTenants; ++i) fold_port(appps[i]->port());
  for (std::size_t k = 0; k < kIsps; ++k) fold_port(infps[k]->port());

  result.epoch_rejected = world->exchange().epoch_rejected();
  result.clamps = world->exchange().clamp_count();
  result.rate_limited = world->exchange().total_delivery_stats().rate_limited;
  result.faults = chaos.fault_count();
  result.exchange_checks = world->auditor().exchange_checks();
  result.auditor_checks = world->auditor().check_count();
  return result;
}

}  // namespace eona::scenarios
