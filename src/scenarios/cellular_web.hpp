// Figure 4 scenario: can the cellular InfP know its users' web experience?
//
// Ground truth: page-load sessions over cell sectors with varying capacity,
// background load, radio latency, and page weight. The InfP either
//  (a) *infers* per-session experience from passively observable network
//      features (throughput, RTT, bytes, duration) with a model trained on
//      a labelled subset -- today's stop-gap; or
//  (b) receives it *directly* over A2I as k-anonymous per-sector aggregates.
// The experiment reports per-session error and the sector ranking quality
// of both, across radio-noise levels.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "scenarios/common.hpp"
#include "telemetry/column_store.hpp"

namespace eona::scenarios {

struct CellularWebConfig {
  std::uint64_t seed = 1;
  std::size_t sessions = 1500;
  std::size_t sectors = 8;
  double arrival_rate = 4.0;      ///< page loads per second (aggregate)
  double radio_noise = 0.4;       ///< lognormal sigma of radio RTT (jitter)
  Duration radio_rtt_median = 0.060;
  double labeled_fraction = 0.3;  ///< sessions the InfP has labels for
  std::uint64_t k_anonymity = 10;
  double background_flows_per_sector = 2.0;  ///< mean long-lived flows
  /// Relative noise on the InfP's passively measured features (DPI flow
  /// reassembly error, sampling, radio-counter quantisation). The paper's
  /// point: the InfP's view is indirect and noisy.
  double feature_noise = 0.25;
  /// When set, receives the run's JSONL event trace.
  sim::TraceWriter* trace = nullptr;
  /// When set, a StoreRecorder feeds this columnar store the run's event
  /// stream (eona_lab --store=FILE dumps it as queryable rows).
  telemetry::ColumnStore* store = nullptr;
  /// When non-null, accumulates run-cost counters (scheduler events).
  RunPerf* perf = nullptr;
};

struct CellularWebResult {
  std::size_t evaluated = 0;
  // --- per-session engagement-estimation error on the unlabelled set ---
  double inference_mae = 0.0;
  double a2i_mae = 0.0;  ///< group-mean as the session estimate
  // --- per-sector (group) estimation error of mean engagement ---
  double inference_group_mae = 0.0;
  double a2i_group_mae = 0.0;  ///< ~0: direct measurement, aggregation only
  // --- sector-ranking quality (Spearman vs true per-sector engagement) ---
  double inference_rank_corr = 0.0;
  double a2i_rank_corr = 0.0;
  // --- bookkeeping ---
  std::size_t suppressed_sectors = 0;  ///< k-anonymity suppressions
  double mean_true_plt = 0.0;
};

[[nodiscard]] CellularWebResult run_cellular_web(
    const CellularWebConfig& config);

}  // namespace eona::scenarios
