#include "scenarios/failover.hpp"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "app/content_catalog.hpp"
#include "app/video_player.hpp"
#include "app/workload.hpp"
#include "scenarios/chaos.hpp"
#include "scenarios/world.hpp"

namespace eona::scenarios {

FailoverResult run_failover(const FailoverConfig& config) {
  sim::World::Builder b(config.seed);
  b.attach_trace(config.trace);
  b.attach_store(config.store);

  // --- topology: oscillation's two-interconnect shape, sized healthy ------
  b.add_isp_bottleneck(gbps(1));
  net::Topology& topo = b.topology();
  NodeId client = b.client();
  NodeId edge = b.edge();
  NodeId srv_x = topo.add_node(net::NodeKind::kCdnServer, "cdnX-srv");
  NodeId srv_y = topo.add_node(net::NodeKind::kCdnServer, "cdnY-srv");
  NodeId origin_x = topo.add_node(net::NodeKind::kOrigin, "cdnX-origin");
  NodeId origin_y = topo.add_node(net::NodeKind::kOrigin, "cdnY-origin");

  LinkId x_at_b =
      topo.add_link(srv_x, edge, config.capacity_b, milliseconds(3), "X@B");
  LinkId x_at_c =
      topo.add_link(srv_x, edge, config.capacity_cx, milliseconds(12), "X@C");
  LinkId y_at_c =
      topo.add_link(srv_y, edge, config.capacity_cy, milliseconds(12), "Y@C");
  topo.add_link(origin_x, srv_x, mbps(500), milliseconds(15));
  topo.add_link(origin_y, srv_y, mbps(500), milliseconds(15));

  IspId isp(0);
  b.build_network(isp);
  net::PeeringBook& peering = b.world().peering();

  b.with_catalog(24, config.video_duration, 0.8);
  app::ContentCatalog& catalog = b.world().catalog();
  app::Cdn& cdn_x = b.add_cdn_at("cdn-X", origin_x);
  app::Cdn& cdn_y = b.add_cdn_at("cdn-Y", origin_y);
  ServerId sx = cdn_x.add_server(srv_x, x_at_b, 32);
  ServerId sy = cdn_y.add_server(srv_y, y_at_c, 32);
  // Registration order: B first = the ISP's preferred interconnect, and the
  // one the chaos plan kills.
  peering.add(isp, cdn_x.id(), x_at_b, "X@B");
  peering.add(isp, cdn_x.id(), x_at_c, "X@C");
  peering.add(isp, cdn_y.id(), y_at_c, "Y@C");
  cdn_x.set_peering_book(&peering);
  cdn_y.set_peering_book(&peering);
  {
    std::vector<ContentId> all;
    for (std::size_t i = 0; i < catalog.size(); ++i)
      all.push_back(ContentId(static_cast<ContentId::rep_type>(i)));
    cdn_x.warm_cache(sx, all);
    cdn_y.warm_cache(sy, all);
  }

  // --- control planes -----------------------------------------------------
  const std::vector<BitsPerSecond> ladder{kbps(300), kbps(700), mbps(1.5),
                                          mbps(3)};
  control::AppPConfig appp_cfg;
  appp_cfg.control_period = config.appp_period;
  appp_cfg.intended_bitrate = ladder.back();
  b.add_exchange();
  control::AppPController& appp = b.add_appp("video-appp", appp_cfg);

  control::InfPConfig infp_cfg;
  infp_cfg.control_period = config.infp_period;
  // No attach_cdn: srv_x is dual-homed (B and C), so an egress-link health
  // check would wrongly hint it offline during the B outage; the peering
  // status rows carry the outage signal here.
  control::InfPController& infp = b.add_infp("access-isp", isp, {}, infp_cfg);

  b.wire_tenant();
  appp.set_eona_enabled(config.mode != ControlMode::kBaseline);
  infp.set_eona_enabled(config.mode != ControlMode::kBaseline);
  appp.start();
  infp.start();
  app::PlayerBrain& brain = appp.brain();

  // --- workload -----------------------------------------------------------
  app::SessionPool& pool = b.add_session_pool();
  std::unique_ptr<sim::World> world = b.build();
  sim::Scheduler& sched = world->sched();

  SessionId::rep_type next_session = 0;
  sim::Rng content_rng = world->rng().fork();
  app::PlayerConfig player_cfg;
  player_cfg.ladder = ladder;
  auto spawn = [&] {
    SessionId session(next_session++);
    telemetry::Dimensions dims;
    dims.isp = isp;
    ContentId content = catalog.sample(content_rng);
    pool.spawn_player(sched, world->transfers(), world->network(),
                      world->routing(), world->directory(), brain,
                      &appp.collector(), player_cfg, session, dims, client,
                      catalog.item(content), qoe::EngagementModel{});
  };
  app::PoissonArrivals arrivals(
      sched, world->rng().fork(), {{0.0, config.arrival_rate}},
      config.run_duration - config.video_duration, spawn);

  // --- chaos --------------------------------------------------------------
  sim::ChaosEngine chaos(sched, world->bus(), world->network(),
                         &world->directory());
  sim::FaultPlan plan;
  if (!config.faults.empty()) {
    plan = sim::FaultPlan::parse(config.faults);
  } else {
    sim::FaultAction down;
    down.kind = sim::FaultAction::Kind::kLinkDown;
    down.at = config.outage_start;
    down.target = "X@B";
    plan.actions.push_back(down);
    if (config.outage_duration > 0.0) {
      sim::FaultAction up = down;
      up.kind = sim::FaultAction::Kind::kLinkUp;
      up.at = config.outage_start + config.outage_duration;
      plan.actions.push_back(up);
    }
  }
  chaos.schedule(plan);

  // --- recovery sampling --------------------------------------------------
  // 1 Hz: rebuffer-seconds is the integral of the stalled-player count after
  // the outage; recovery is the moment the last stalled sample was seen.
  const Duration sample_dt = 1.0;
  FailoverResult result;
  TimePoint last_stalled_at = config.outage_start;
  bool any_stalled = false;
  sim::PeriodicTask sampler(sched, sample_dt, [&] {
    std::size_t stalled = pool.stalled_count();
    std::size_t stranded = pool.stranded_count();
    result.metrics.series("stalled").record(
        sched.now(), static_cast<double>(stalled));
    result.metrics.series("stranded").record(
        sched.now(), static_cast<double>(stranded));
    result.metrics.series("active").record(
        sched.now(), static_cast<double>(pool.active_count()));
    if (sched.now() < config.outage_start) return;
    result.rebuffer_seconds += static_cast<double>(stalled) * sample_dt;
    if (stalled > 0 || stranded > 0) {
      any_stalled = true;
      last_stalled_at = sched.now();
    }
  });

  // --- run ----------------------------------------------------------------
  sched.run_until(config.run_duration);
  arrivals.stop();
  pool.abort_all();
  sched.run_until(config.run_duration + 1.0);

  world->auditor().finalize();

  if (config.perf != nullptr) {
    config.perf->events += sched.events_fired();
    config.perf->add_exchange(world->exchange());
  }

  // --- summarise ----------------------------------------------------------
  result.qoe = QoeSummary::from(pool.summaries());
  result.time_to_recovery =
      any_stalled ? last_stalled_at - config.outage_start : 0.0;
  result.faults = chaos.fault_count();
  result.aborted_transfers = world->metrics().count("transfer_aborted");
  result.stranded_sessions = world->metrics().count("session_stranded");
  result.resumed_sessions = world->metrics().count("session_resumed");
  result.infp_failovers = infp.failovers();
  result.auditor_checks = world->auditor().check_count();
  return result;
}

}  // namespace eona::scenarios
