// Shared vocabulary for the experiment scenarios: control modes and QoE
// summaries computed from finished sessions. EONA wiring itself lives on
// the brokered exchange (eona/exchange.hpp, World::Builder::wire_tenant).
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "app/session_pool.hpp"
#include "common/contracts.hpp"
#include "control/appp.hpp"
#include "control/energy.hpp"
#include "control/infp.hpp"
#include "eona/registry.hpp"

namespace eona::sim {
class TraceWriter;  // sim/trace.hpp; scenario configs carry an optional one
}  // namespace eona::sim

namespace eona::scenarios {

/// Which control world a scenario runs in.
enum class ControlMode {
  kBaseline,  ///< today's independent, information-starved loops
  kEona,      ///< EONA interfaces wired and consumed
  kOracle,    ///< hypothetical global controller (upper bound)
};

[[nodiscard]] inline const char* to_string(ControlMode mode) {
  switch (mode) {
    case ControlMode::kBaseline: return "baseline";
    case ControlMode::kEona: return "eona";
    case ControlMode::kOracle: return "oracle";
  }
  return "?";
}

/// Run-cost counters a scenario fills in when the caller passes a non-null
/// `perf` pointer in its config (the eona_lab --perf flag). Counters are
/// accumulated (+=) so one RunPerf can span several runs; wall-clock and
/// memory are measured by the caller, keeping scenario output independent
/// of the host machine.
struct RunPerf {
  std::uint64_t events = 0;  ///< scheduler events fired during the run

  // Phase breakdown for barrier-scheduled scenarios (scale). Non-barrier
  // scenarios leave these at zero. Wall-clock phase times are measured
  // inside the run loop (host-dependent), but land only here -- never in
  // the scenario's byte-stable result JSON.
  std::uint64_t barrier_rounds = 0;       ///< coupling rounds executed
  std::uint64_t sectors_dispatched = 0;   ///< sector advances run by the pool
  std::uint64_t sectors_elided = 0;       ///< quiescent sectors skipped
  std::uint64_t parallel_advance_ns = 0;  ///< wall time in sector advances
  std::uint64_t serial_barrier_ns = 0;    ///< wall time in the coordinator

  /// Fraction of phase-accounted wall time spent in the serial coordinator.
  [[nodiscard]] double serial_fraction() const {
    auto total =
        static_cast<double>(parallel_advance_ns + serial_barrier_ns);
    return total > 0.0 ? static_cast<double>(serial_barrier_ns) / total : 0.0;
  }

  // Broker counters (scenarios with an exchange; zero otherwise).
  std::uint64_t clamp_count = 0;     ///< egress-quota clamps at publish
  std::uint64_t rate_limited = 0;    ///< reports dropped by per-leg rate caps
  std::uint64_t epoch_rejected = 0;  ///< publishes fenced by crash/stale epoch

  /// Fold a run's broker counters in (call once per run, post-drain).
  void add_exchange(const core::Exchange& exchange) {
    clamp_count += exchange.clamp_count();
    rate_limited += exchange.total_delivery_stats().rate_limited;
    epoch_rejected += exchange.epoch_rejected();
  }
};

/// Aggregate experience over a set of finished sessions.
struct QoeSummary {
  std::size_t sessions = 0;
  double mean_buffering = 0.0;
  double p90_buffering = 0.0;
  double mean_bitrate = 0.0;   // bps
  double mean_join_time = 0.0;
  double mean_engagement = 0.0;
  std::uint64_t stalls = 0;
  std::uint64_t cdn_switches = 0;
  std::uint64_t server_switches = 0;

  /// Summarise sessions passing `keep` (default: all).
  template <typename Pred>
  static QoeSummary from(const std::vector<app::SessionSummary>& all,
                         Pred keep) {
    QoeSummary s;
    std::vector<double> buffering;
    for (const auto& session : all) {
      if (!keep(session)) continue;
      ++s.sessions;
      const auto& m = session.record.metrics;
      s.mean_buffering += m.buffering_ratio;
      s.mean_bitrate += m.avg_bitrate;
      s.mean_join_time += m.join_time;
      s.mean_engagement += m.engagement;
      s.stalls += session.stalls;
      s.cdn_switches += session.cdn_switches;
      s.server_switches += session.server_switches;
      buffering.push_back(m.buffering_ratio);
    }
    if (s.sessions == 0) return s;
    auto n = static_cast<double>(s.sessions);
    s.mean_buffering /= n;
    s.mean_bitrate /= n;
    s.mean_join_time /= n;
    s.mean_engagement /= n;
    // Percentile convention: lower nearest-rank at index floor(0.9*(n-1))
    // of the sorted sample (no interpolation) -- the same element a full
    // sort would select, found in O(n) with nth_element.
    auto rank = static_cast<std::size_t>(
        0.9 * static_cast<double>(buffering.size() - 1));
    EONA_ASSERT(rank < buffering.size());
    std::nth_element(buffering.begin(),
                     buffering.begin() + static_cast<std::ptrdiff_t>(rank),
                     buffering.end());
    s.p90_buffering = buffering[rank];
    return s;
  }

  static QoeSummary from(const std::vector<app::SessionSummary>& all) {
    return from(all, [](const app::SessionSummary&) { return true; });
  }
};

}  // namespace eona::scenarios
