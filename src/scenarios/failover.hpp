// §4 peering-failure scenario: a chaos-injected interconnect outage, and
// how fast each control world restores QoE.
//
// One ISP peers with CDN X at a cheap local point B and at an IXP C (both
// sized for the load); CDN Y hangs off C as the trial-and-error escape
// hatch -- deliberately undersized, the way a backup transit path usually
// is. All sessions start on X via B. At outage_start the chaos engine takes
// the X@B interconnect down.
//
// Baseline (siloed): the data plane strands every flow on the dead link and
// aborts the in-flight fetches; players discover the failure one connection
// error at a time, pay retry backoff plus a reconnect, and trial-and-error
// their way to CDN Y -- where the undersized escape hatch congests and the
// herd rebuffers. The ISP's windowed monitor sees a *dead-quiet* link
// (utilisation 0), so its flee-the-heat TE never fires -- nobody in the
// siloed world can say "the interconnect is gone", only "my session
// stalled".
//
// EONA: the InfP learns of the fault from the event bus, immediately
// re-steers X's sector to the surviving point C -- migrating the live flows
// before the stranded-transfer sweep can abort them -- and publishes an
// out-of-band I2A update whose peering status and server hints reflect the
// outage, so AppP players re-select with information instead of retries.
//
// Reported: rebuffer-seconds (stalled-player-seconds after the outage) and
// time-to-recovery (when the last player unstalls), the two §4 recovery
// metrics bench_sec4_failover sweeps across seeds.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "scenarios/common.hpp"
#include "sim/timeseries.hpp"
#include "telemetry/column_store.hpp"

namespace eona::scenarios {

struct FailoverConfig {
  std::uint64_t seed = 1;
  ControlMode mode = ControlMode::kBaseline;
  BitsPerSecond capacity_b = mbps(300);   ///< X at local point B (preferred)
  BitsPerSecond capacity_cx = mbps(300);  ///< X at the IXP C (survivor)
  /// Y at the IXP C. Deliberately undersized relative to the steady-state
  /// offered load (~50 concurrent sessions): the siloed world's only escape
  /// route congests under the failover herd, while EONA re-steers onto X's
  /// full-size surviving interconnect at C.
  BitsPerSecond capacity_cy = mbps(60);
  double arrival_rate = 0.4;              ///< sessions/s
  Duration video_duration = 120.0;
  TimePoint run_duration = 360.0;
  TimePoint outage_start = 120.0;
  /// 0 = the link stays down for the rest of the run.
  Duration outage_duration = 0.0;
  Duration appp_period = 10.0;
  Duration infp_period = 30.0;
  /// Custom fault plan (compact text form, see scenarios/chaos.hpp). Empty =
  /// the default single peering outage built from outage_start/duration.
  std::string faults;
  /// When set, receives the run's JSONL event trace.
  sim::TraceWriter* trace = nullptr;
  /// When set, a StoreRecorder feeds this columnar store the run's event
  /// stream (eona_lab --store=FILE dumps it as queryable rows).
  telemetry::ColumnStore* store = nullptr;
  /// When non-null, accumulates run-cost counters (scheduler events).
  RunPerf* perf = nullptr;
};

struct FailoverResult {
  QoeSummary qoe;
  // --- §4 recovery metrics (measured from outage_start) ---
  /// Integral of stalled-player count over time after the outage [s].
  double rebuffer_seconds = 0.0;
  /// Time from the outage until the last stalled player resumed; 0 when no
  /// player ever stalled, run-end minus outage when stalls never cleared.
  Duration time_to_recovery = 0.0;
  // --- chaos / failure accounting ---
  std::uint64_t faults = 0;              ///< chaos actions executed
  std::uint64_t aborted_transfers = 0;   ///< data-plane fetch aborts
  std::uint64_t stranded_sessions = 0;   ///< SessionStrandedEvent count
  std::uint64_t resumed_sessions = 0;    ///< SessionResumedEvent count
  std::uint64_t infp_failovers = 0;      ///< fault-driven egress re-steers
  std::uint64_t auditor_checks = 0;      ///< invariant sweeps performed
  sim::MetricSet metrics;  ///< series: stalled, stranded, active
};

[[nodiscard]] FailoverResult run_failover(const FailoverConfig& config);

}  // namespace eona::scenarios
