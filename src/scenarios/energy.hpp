// §2/§5 server-energy scenario: a CDN operator scales its fleet with a
// diurnal load cycle.
//
// The baseline energy controller sees only server load: tuned aggressively
// it saves energy but tanks off-peak QoE (it cannot see the sessions it
// hurt); tuned conservatively it wastes energy. The EONA controller adds an
// A2I QoE guardrail -- scale down only while client experience is healthy,
// wake immediately when it degrades -- reaching near-baseline savings at
// near-zero QoE cost.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "scenarios/common.hpp"
#include "sim/timeseries.hpp"
#include "telemetry/column_store.hpp"

namespace eona::scenarios {

struct EnergyScenarioConfig {
  std::uint64_t seed = 1;
  bool eona = false;              ///< guardrail on?
  double scale_down_load = 0.40;  ///< aggressiveness (swept by the bench)
  double scale_up_load = 0.80;
  std::size_t servers = 4;
  BitsPerSecond server_capacity = mbps(80);
  double day_rate = 0.45;    ///< arrivals/s at peak
  double night_rate = 0.15;  ///< arrivals/s off-peak
  Duration phase_length = 600.0;  ///< day and night each last this long
  std::size_t cycles = 2;         ///< day/night pairs
  Duration video_duration = 120.0;
  Duration energy_period = 30.0;
  /// When set, receives the run's JSONL event trace.
  /// Optional chaos plan (FaultPlan grammar; see scenarios/chaos.hpp).
  /// Empty = no fault injection, byte-identical to the plan-free build.
  std::string faults;
  sim::TraceWriter* trace = nullptr;
  /// When set, a StoreRecorder feeds this columnar store the run's event
  /// stream (eona_lab --store=FILE dumps it as queryable rows).
  telemetry::ColumnStore* store = nullptr;
  /// When non-null, accumulates run-cost counters (scheduler events).
  RunPerf* perf = nullptr;
};

struct EnergyScenarioResult {
  QoeSummary qoe;
  QoeSummary night_qoe;  ///< sessions finishing in night phases
  double saved_fraction = 0.0;  ///< server-seconds saved / total
  double mean_online = 0.0;
  std::uint64_t shutdowns = 0;
  std::uint64_t wakes = 0;
  sim::MetricSet metrics;  ///< series: online_servers, stalled_fraction
};

[[nodiscard]] EnergyScenarioResult run_energy(
    const EnergyScenarioConfig& config);

}  // namespace eona::scenarios
