// eona_lab: command-line driver for the experiment scenarios.
//
// Run any scenario by name with key=value overrides; results print as JSON
// (machine-readable) and recorded time series can be dumped as CSV --
// the surface a downstream user scripts against. The heavy lifting lives in
// scenarios/lab.hpp (single runs) and scenarios/sweep.hpp (multi-run
// sweeps), so sweeps and single runs share one code path per scenario.
//
//   $ eona_lab flashcrowd mode=eona access_capacity_mbps=80 seed=7
//   $ eona_lab oscillation mode=baseline run_duration=1800 --series=csv
//   $ eona_lab quickstart mode=eona --trace=events.jsonl
//   $ eona_lab sweep flashcrowd seeds=1..8 modes=baseline,eona threads=4
//   $ eona_lab list
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "eona/json.hpp"
#include "scenarios/lab.hpp"
#include "scenarios/sweep.hpp"
#include "sim/trace.hpp"

using namespace eona;

namespace {

struct Args {
  std::string scenario;
  std::map<std::string, std::string> overrides;
  bool csv_series = false;
  std::string trace_path;  ///< --trace=FILE; empty = no trace
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  if (argc > first) args.scenario = argv[first];
  for (int i = first + 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token == "--series=csv") {
      args.csv_series = true;
      continue;
    }
    if (token.rfind("--trace=", 0) == 0) {
      args.trace_path = token.substr(8);
      if (args.trace_path.empty())
        throw ConfigError("--trace needs a file path");
      continue;
    }
    if (token.rfind("--faults=", 0) == 0) {
      // Sugar for the chaos-plan override (see scenarios/chaos.hpp for the
      // kind:target@t[:factor];... grammar).
      args.overrides["faults"] = token.substr(9);
      continue;
    }
    auto eq = token.find('=');
    if (eq == std::string::npos)
      throw ConfigError("expected key=value, got '" + token + "'");
    args.overrides[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return args;
}

void dump_series_csv(const sim::MetricSet& metrics) {
  for (const auto& [name, series] : metrics.all_series()) {
    std::printf("# series,%s\n", name.c_str());
    std::printf("t,value\n");
    for (const auto& s : series.samples())
      std::printf("%.3f,%.6g\n", s.t, s.value);
  }
}

/// "a..b" (inclusive) or "a,b,c" -> seed list.
std::vector<std::uint64_t> parse_seeds(const std::string& text) {
  std::vector<std::uint64_t> seeds;
  auto range = text.find("..");
  if (range != std::string::npos) {
    std::uint64_t lo = std::stoull(text.substr(0, range));
    std::uint64_t hi = std::stoull(text.substr(range + 2));
    if (hi < lo) throw ConfigError("seeds range is empty: " + text);
    for (std::uint64_t s = lo; s <= hi; ++s) seeds.push_back(s);
    return seeds;
  }
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    seeds.push_back(std::stoull(text.substr(start, comma - start)));
    start = comma + 1;
  }
  return seeds;
}

std::vector<std::string> parse_list(const std::string& text) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    items.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return items;
}

void write_trace_file(const std::string& path, const std::string& buffer) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw ConfigError("cannot open trace file '" + path + "'");
  out.write(buffer.data(),
            static_cast<std::streamsize>(buffer.size()));
}

int run_single(const Args& args) {
  sim::MetricSet series;
  sim::TraceWriter trace;
  core::JsonValue out = scenarios::run_scenario_json(
      args.scenario, args.overrides, args.csv_series ? &series : nullptr,
      args.trace_path.empty() ? nullptr : &trace);
  std::printf("%s\n", out.dump(2).c_str());
  if (args.csv_series) dump_series_csv(series);
  if (!args.trace_path.empty())
    write_trace_file(args.trace_path, trace.buffer());
  return 0;
}

int run_sweep_cmd(int argc, char** argv) {
  Args args = parse_args(argc, argv, 2);
  if (args.scenario.empty())
    throw ConfigError("sweep: scenario name required");
  scenarios::SweepSpec spec;
  spec.scenario = args.scenario;
  spec.seeds = {1};
  auto& ov = args.overrides;
  if (auto it = ov.find("seeds"); it != ov.end()) {
    spec.seeds = parse_seeds(it->second);
    ov.erase(it);
  }
  if (auto it = ov.find("modes"); it != ov.end()) {
    spec.modes = parse_list(it->second);
    ov.erase(it);
  }
  if (auto it = ov.find("mode_key"); it != ov.end()) {
    spec.mode_key = it->second;
    ov.erase(it);
  }
  if (auto it = ov.find("threads"); it != ov.end()) {
    spec.threads = static_cast<std::size_t>(std::stoull(it->second));
    ov.erase(it);
  }
  spec.overrides = ov;
  std::string trace;
  core::JsonValue out = scenarios::run_sweep(
      spec, args.trace_path.empty() ? nullptr : &trace);
  std::printf("%s\n", out.dump(2).c_str());
  if (!args.trace_path.empty()) write_trace_file(args.trace_path, trace);
  return 0;
}

void usage() {
  std::printf(
      "usage: eona_lab <scenario> [key=value ...] [--series=csv]\n"
      "                [--trace=FILE]\n"
      "       eona_lab sweep <scenario> [seeds=a..b|a,b,c] [modes=m1,m2]\n"
      "                [mode_key=k] [threads=N] [--trace=FILE] [key=value ...]\n"
      "scenarios:\n"
      "  flashcrowd    Fig 3  (mode, seed, access_capacity_mbps, arrival_rate,\n"
      "                        crowd_background_fraction, crowd_start, crowd_end,\n"
      "                        run_duration, a2i_delay, i2a_delay,\n"
      "                        i2a_drop, i2a_duplicate, i2a_jitter, a2i_drop,\n"
      "                        outage_start, outage_end, robust, max_retries,\n"
      "                        base_backoff, freshness_deadline, stale_widening)\n"
      "  oscillation   Fig 5  (mode, seed, run_duration, arrival_rate,\n"
      "                        appp_period, infp_period, appp_dwell, infp_dwell,\n"
      "                        a2i_delay, i2a_delay)\n"
      "  coarse        Sec 2  (mode, seed, incident_at, run_duration,\n"
      "                        degraded_factor, arrival_rate)\n"
      "  energy        Sec 2  (seed, eona, scale_down_load, scale_up_load,\n"
      "                        day_rate, night_rate, cycles)\n"
      "  cellular      Fig 4  (seed, sessions, sectors, feature_noise,\n"
      "                        labeled_fraction, k_anonymity)\n"
      "  fairness      Sec 5  (seed, appp1_eona, appp2_eona, rate1, rate2,\n"
      "                        run_duration)\n"
      "  quickstart    the ~30-line World::Builder starter world\n"
      "                        (mode, seed, arrival_rate,\n"
      "                        access_capacity_mbps, run_duration)\n"
      "  failover      Sec 4  (mode, seed, run_duration, arrival_rate,\n"
      "                        outage_start, outage_duration, appp_period,\n"
      "                        infp_period, capacity_b_mbps, capacity_cx_mbps,\n"
      "                        capacity_cy_mbps, faults)\n"
      "mode is baseline|eona|oracle; --series=csv dumps recorded time series.\n"
      "--faults=PLAN injects a chaos plan (failover scenario), e.g.\n"
      "  eona_lab failover mode=eona --faults='down:X@B@120;up:X@B@180'\n"
      "plan grammar: kind:target@t[:factor] clauses joined by ';', where kind\n"
      "is down|up|brownout|crash|restart, target is a topology link name or\n"
      "cdn/serverindex, and factor is the brownout's remaining fraction.\n"
      "--trace=FILE writes the run's JSONL event trace (bit-identical for a\n"
      "fixed seed, for any sweep thread count).\n"
      "sweep fans {seeds} x {modes} across a thread pool (threads=0 = all\n"
      "cores) and prints one collated JSON document; the output is identical\n"
      "for any thread count.\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2 && std::string(argv[1]) == "sweep")
      return run_sweep_cmd(argc, argv);
    Args args = parse_args(argc, argv, 1);
    if (args.scenario.empty() || args.scenario == "list") {
      usage();
      return 0;
    }
    return run_single(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "eona_lab: %s\n", e.what());
    return 1;
  }
}
