// eona_lab: command-line driver for the experiment scenarios.
//
// Run any scenario by name with key=value overrides; results print as JSON
// (machine-readable) and recorded time series can be dumped as CSV --
// the surface a downstream user scripts against. The heavy lifting lives in
// scenarios/lab.hpp (single runs) and scenarios/sweep.hpp (multi-run
// sweeps), so sweeps and single runs share one code path per scenario.
//
//   $ eona_lab flashcrowd mode=eona access_capacity_mbps=80 seed=7
//   $ eona_lab oscillation mode=baseline run_duration=1800 --series=csv
//   $ eona_lab quickstart mode=eona --trace=events.jsonl
//   $ eona_lab sweep flashcrowd seeds=1..8 modes=baseline,eona threads=4
//   $ eona_lab list
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "eona/json.hpp"
#include "scenarios/lab.hpp"
#include "scenarios/sweep.hpp"
#include "sim/trace.hpp"
#include "telemetry/column_store.hpp"
#include "telemetry/store_replay.hpp"

using namespace eona;

namespace {

struct Args {
  std::string scenario;
  std::map<std::string, std::string> overrides;
  bool csv_series = false;
  bool perf = false;       ///< --perf; wall-clock + events/sec to stderr
  std::string trace_path;  ///< --trace=FILE; empty = no trace
  std::string store_path;  ///< --store=FILE; empty = no store dump
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  if (argc > first) args.scenario = argv[first];
  for (int i = first + 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token == "--series=csv") {
      args.csv_series = true;
      continue;
    }
    if (token == "--perf") {
      args.perf = true;
      continue;
    }
    if (token.rfind("--trace=", 0) == 0) {
      args.trace_path = token.substr(8);
      if (args.trace_path.empty())
        throw ConfigError("--trace needs a file path");
      continue;
    }
    if (token.rfind("--store=", 0) == 0) {
      args.store_path = token.substr(8);
      if (args.store_path.empty())
        throw ConfigError("--store needs a file path");
      continue;
    }
    if (token.rfind("--faults=", 0) == 0) {
      // Sugar for the chaos-plan override (see scenarios/chaos.hpp for the
      // kind:target@t[:factor];... grammar).
      args.overrides["faults"] = token.substr(9);
      continue;
    }
    auto eq = token.find('=');
    if (eq == std::string::npos)
      throw ConfigError("expected key=value, got '" + token + "'");
    // Sugar: --key=value is the same override as key=value (reserved flags
    // were consumed above).
    std::size_t start = token.rfind("--", 0) == 0 ? 2 : 0;
    args.overrides[token.substr(start, eq - start)] = token.substr(eq + 1);
  }
  return args;
}

void dump_series_csv(const sim::MetricSet& metrics) {
  for (const auto& [name, series] : metrics.all_series()) {
    std::printf("# series,%s\n", name.c_str());
    std::printf("t,value\n");
    for (const auto& s : series.samples())
      std::printf("%.3f,%.6g\n", s.t, s.value);
  }
}

/// "a..b" (inclusive) or "a,b,c" -> seed list.
std::vector<std::uint64_t> parse_seeds(const std::string& text) {
  std::vector<std::uint64_t> seeds;
  auto range = text.find("..");
  if (range != std::string::npos) {
    std::uint64_t lo = std::stoull(text.substr(0, range));
    std::uint64_t hi = std::stoull(text.substr(range + 2));
    if (hi < lo) throw ConfigError("seeds range is empty: " + text);
    for (std::uint64_t s = lo; s <= hi; ++s) seeds.push_back(s);
    return seeds;
  }
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    seeds.push_back(std::stoull(text.substr(start, comma - start)));
    start = comma + 1;
  }
  return seeds;
}

std::vector<std::string> parse_list(const std::string& text) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    items.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return items;
}

void write_trace_file(const std::string& path, const std::string& buffer) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw ConfigError("cannot open trace file '" + path + "'");
  out.write(buffer.data(),
            static_cast<std::streamsize>(buffer.size()));
}

/// Peak resident set size in bytes (Linux ru_maxrss is KiB).
long long peak_rss_bytes() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<long long>(usage.ru_maxrss) * 1024;
}

int run_single(const Args& args) {
  sim::MetricSet series;
  sim::TraceWriter trace;
  telemetry::ColumnStore store;
  scenarios::RunPerf perf;
  auto t0 = std::chrono::steady_clock::now();
  core::JsonValue out = scenarios::run_scenario_json(
      args.scenario, args.overrides, args.csv_series ? &series : nullptr,
      args.trace_path.empty() ? nullptr : &trace,
      args.store_path.empty() ? nullptr : &store,
      args.perf ? &perf : nullptr);
  auto t1 = std::chrono::steady_clock::now();
  std::printf("%s\n", out.dump(2).c_str());
  if (args.perf) {
    // Perf goes to stderr so stdout stays the byte-stable scenario JSON.
    double wall = std::chrono::duration<double>(t1 - t0).count();
    core::JsonValue p = core::JsonValue::object();
    p.set("wall_seconds", core::JsonValue::number(wall));
    p.set("events", core::JsonValue::number(static_cast<double>(perf.events)));
    p.set("events_per_sec",
          core::JsonValue::number(
              wall > 0.0 ? static_cast<double>(perf.events) / wall : 0.0));
    p.set("peak_rss_bytes",
          core::JsonValue::number(static_cast<double>(peak_rss_bytes())));
    // Phase breakdown (barrier-scheduled scenarios fill these; others
    // report zeros): where the wall clock went and how sparse the rounds
    // were. serial_fraction is the coordinator's share of accounted time.
    p.set("barrier_rounds",
          core::JsonValue::number(static_cast<double>(perf.barrier_rounds)));
    p.set("sectors_dispatched",
          core::JsonValue::number(
              static_cast<double>(perf.sectors_dispatched)));
    p.set("sectors_elided",
          core::JsonValue::number(static_cast<double>(perf.sectors_elided)));
    p.set("parallel_advance_seconds",
          core::JsonValue::number(
              static_cast<double>(perf.parallel_advance_ns) / 1e9));
    p.set("serial_barrier_seconds",
          core::JsonValue::number(
              static_cast<double>(perf.serial_barrier_ns) / 1e9));
    p.set("serial_fraction", core::JsonValue::number(perf.serial_fraction()));
    // Broker counters (scenarios with an exchange; zeros otherwise): quota
    // clamps at publish, per-leg rate-cap drops summed over legs, and
    // publishes fenced by a crashed/stale-epoch broker.
    p.set("clamp_count",
          core::JsonValue::number(static_cast<double>(perf.clamp_count)));
    p.set("rate_limited",
          core::JsonValue::number(static_cast<double>(perf.rate_limited)));
    p.set("epoch_rejected",
          core::JsonValue::number(static_cast<double>(perf.epoch_rejected)));
    std::fprintf(stderr, "%s\n", p.dump(2).c_str());
  }
  if (args.csv_series) dump_series_csv(series);
  if (!args.trace_path.empty())
    write_trace_file(args.trace_path, trace.buffer());
  if (!args.store_path.empty())
    write_trace_file(args.store_path, store.dump_rows());
  return 0;
}

// --- the query subcommand -------------------------------------------------

telemetry::Agg parse_agg(const std::string& text) {
  if (text == "count") return telemetry::Agg::kCount;
  if (text == "sum") return telemetry::Agg::kSum;
  if (text == "mean") return telemetry::Agg::kMean;
  if (text == "p50") return telemetry::Agg::kP50;
  if (text == "p90") return telemetry::Agg::kP90;
  throw ConfigError("agg must be count|sum|mean|p50|p90");
}

/// "isp,cdn" -> Dim mask.
telemetry::Dim parse_group_by(const std::string& text) {
  telemetry::Dim mask = telemetry::Dim::kNone;
  for (const std::string& item : parse_list(text)) {
    if (item == "isp") mask = mask | telemetry::Dim::kIsp;
    else if (item == "cdn") mask = mask | telemetry::Dim::kCdn;
    else if (item == "server") mask = mask | telemetry::Dim::kServer;
    else if (item == "region") mask = mask | telemetry::Dim::kRegion;
    else throw ConfigError("group_by dims are isp|cdn|server|region");
  }
  return mask;
}

/// eona_lab query FILE [metric=M] [key=value ...]: load a store dump (or a
/// --trace JSONL, which replays through the same event->row mapping) and run
/// one query plan against it. Without metric= it lists what is queryable.
int run_query_cmd(int argc, char** argv) {
  if (argc < 3) throw ConfigError("query: store/trace JSONL file required");
  std::string path = argv[2];
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ConfigError("cannot open store file '" + path + "'");
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());

  telemetry::ColumnStore store;
  telemetry::replay_jsonl(store, text);

  Args args = parse_args(argc, argv, 2);  // re-parse: argv[2] is the "name"
  auto& ov = args.overrides;
  telemetry::StoreQuery q;
  if (auto it = ov.find("metric"); it != ov.end()) {
    q.metric = it->second;
    ov.erase(it);
  }
  if (auto it = ov.find("agg"); it != ov.end()) {
    q.agg = parse_agg(it->second);
    ov.erase(it);
  }
  if (auto it = ov.find("group_by"); it != ov.end()) {
    q.group_by = parse_group_by(it->second);
    ov.erase(it);
  }
  if (auto it = ov.find("t0"); it != ov.end()) {
    q.t0 = std::stod(it->second);
    ov.erase(it);
  }
  if (auto it = ov.find("t1"); it != ov.end()) {
    q.t1 = std::stod(it->second);
    ov.erase(it);
  }
  if (auto it = ov.find("isp"); it != ov.end()) {
    q.isp = IspId(static_cast<std::uint32_t>(std::stoul(it->second)));
    ov.erase(it);
  }
  if (auto it = ov.find("cdn"); it != ov.end()) {
    q.cdn = CdnId(static_cast<std::uint32_t>(std::stoul(it->second)));
    ov.erase(it);
  }
  if (auto it = ov.find("server"); it != ov.end()) {
    q.server = ServerId(static_cast<std::uint32_t>(std::stoul(it->second)));
    ov.erase(it);
  }
  if (auto it = ov.find("region"); it != ov.end()) {
    q.region = static_cast<std::uint32_t>(std::stoul(it->second));
    ov.erase(it);
  }
  if (auto it = ov.find("entity"); it != ov.end()) {
    q.entity = std::stoull(it->second);
    ov.erase(it);
  }
  if (!ov.empty()) {
    std::string unknown;
    for (const auto& [k, v] : ov) unknown += " " + k;
    throw ConfigError("query: unknown keys:" + unknown);
  }

  core::JsonValue out = core::JsonValue::object();
  out.set("file", core::JsonValue::string(path));
  out.set("rows", core::JsonValue::number(static_cast<double>(
                      store.row_count())));
  if (q.metric.empty()) {
    // No plan: describe the store so the user can compose one.
    core::JsonValue metrics = core::JsonValue::array();
    for (const std::string& name : store.metric_names())
      metrics.push_back(core::JsonValue::string(name));
    out.set("metrics", std::move(metrics));
    out.set("groups", core::JsonValue::number(
                          static_cast<double>(store.group_count())));
    std::printf("%s\n", out.dump(2).c_str());
    return 0;
  }

  out.set("metric", core::JsonValue::string(q.metric));
  out.set("agg", core::JsonValue::string(telemetry::agg_name(q.agg)));
  core::JsonValue results = core::JsonValue::array();
  for (const telemetry::StoreResultRow& r : store.run(q)) {
    core::JsonValue row = core::JsonValue::object();
    if (has_dim(q.group_by, telemetry::Dim::kIsp))
      row.set("isp", core::JsonValue::number(r.key.isp.value()));
    if (has_dim(q.group_by, telemetry::Dim::kCdn))
      row.set("cdn", core::JsonValue::number(r.key.cdn.value()));
    if (has_dim(q.group_by, telemetry::Dim::kServer))
      row.set("server", core::JsonValue::number(r.key.server.value()));
    if (has_dim(q.group_by, telemetry::Dim::kRegion))
      row.set("region", core::JsonValue::number(r.key.region));
    row.set("rows", core::JsonValue::number(static_cast<double>(r.rows)));
    row.set("value", core::JsonValue::number(r.value));
    results.push_back(std::move(row));
  }
  out.set("results", std::move(results));
  std::printf("%s\n", out.dump(2).c_str());
  return 0;
}

int run_sweep_cmd(int argc, char** argv) {
  Args args = parse_args(argc, argv, 2);
  if (args.scenario.empty())
    throw ConfigError("sweep: scenario name required");
  scenarios::SweepSpec spec;
  spec.scenario = args.scenario;
  spec.seeds = {1};
  auto& ov = args.overrides;
  if (auto it = ov.find("seeds"); it != ov.end()) {
    spec.seeds = parse_seeds(it->second);
    ov.erase(it);
  }
  if (auto it = ov.find("modes"); it != ov.end()) {
    spec.modes = parse_list(it->second);
    ov.erase(it);
  }
  if (auto it = ov.find("mode_key"); it != ov.end()) {
    spec.mode_key = it->second;
    ov.erase(it);
  }
  if (auto it = ov.find("threads"); it != ov.end()) {
    spec.threads = static_cast<std::size_t>(std::stoull(it->second));
    ov.erase(it);
  }
  spec.overrides = ov;
  std::string trace;
  core::JsonValue out = scenarios::run_sweep(
      spec, args.trace_path.empty() ? nullptr : &trace);
  std::printf("%s\n", out.dump(2).c_str());
  if (!args.trace_path.empty()) write_trace_file(args.trace_path, trace);
  return 0;
}

void usage(std::FILE* out = stdout) {
  std::fprintf(
      out,
      "usage: eona_lab <scenario> [key=value ...] [--series=csv]\n"
      "                [--trace=FILE] [--store=FILE] [--perf]\n"
      "       eona_lab sweep <scenario> [seeds=a..b|a,b,c] [modes=m1,m2]\n"
      "                [mode_key=k] [threads=N] [--trace=FILE] [key=value ...]\n"
      "       eona_lab query <FILE> [metric=M] [agg=count|sum|mean|p50|p90]\n"
      "                [group_by=isp,cdn,server,region] [t0=A] [t1=B]\n"
      "                [isp=N] [cdn=N] [server=N] [region=N] [entity=N]\n"
      "scenarios:\n"
      "  flashcrowd    Fig 3  (mode, seed, access_capacity_mbps, arrival_rate,\n"
      "                        crowd_background_fraction, crowd_start, crowd_end,\n"
      "                        run_duration, a2i_delay, i2a_delay,\n"
      "                        i2a_drop, i2a_duplicate, i2a_jitter, a2i_drop,\n"
      "                        outage_start, outage_end, robust, max_retries,\n"
      "                        base_backoff, freshness_deadline, stale_widening,\n"
      "                        provision=off|reactive|forecast,\n"
      "                        provision_step_mbps, provision_max_mbps,\n"
      "                        provision_lead, provision_util,\n"
      "                        provision_headroom, provision_horizon,\n"
      "                        forecast_alpha, forecast_beta, forecast_period,\n"
      "                        qoe_stall_threshold)\n"
      "  oscillation   Fig 5  (mode, seed, run_duration, arrival_rate,\n"
      "                        appp_period, infp_period, appp_dwell, infp_dwell,\n"
      "                        a2i_delay, i2a_delay)\n"
      "  coarse        Sec 2  (mode, seed, incident_at, run_duration,\n"
      "                        degraded_factor, arrival_rate)\n"
      "  energy        Sec 2  (seed, eona, scale_down_load, scale_up_load,\n"
      "                        day_rate, night_rate, cycles)\n"
      "  cellular      Fig 4  (seed, sessions, sectors, feature_noise,\n"
      "                        labeled_fraction, k_anonymity)\n"
      "  fairness      Sec 5  (seed, appp1_eona, appp2_eona, rate1, rate2,\n"
      "                        run_duration)\n"
      "  federation    E19    brokered exchange: 3 AppPs x 2 InfPs, tenant 0\n"
      "                        over-reports forecasts to grab egress share;\n"
      "                        broker=1 clamps it to its quota\n"
      "                        (seed, broker, exaggeration, arrival_rate,\n"
      "                        pool_mbps, access_capacity_mbps,\n"
      "                        video_duration, run_duration)\n"
      "  quickstart    the ~30-line World::Builder starter world\n"
      "                        (mode, seed, arrival_rate,\n"
      "                        access_capacity_mbps, run_duration)\n"
      "  failover      Sec 4  (mode, seed, run_duration, arrival_rate,\n"
      "                        outage_start, outage_duration, appp_period,\n"
      "                        infp_period, capacity_b_mbps, capacity_cx_mbps,\n"
      "                        capacity_cy_mbps, faults)\n"
      "  broker_outage E20    federation plane with a mortal broker: the\n"
      "                        exchange crashes and restarts mid-run, tenants\n"
      "                        reattach on jittered backoff, a fourth tenant\n"
      "                        joins and one unwires mid-run\n"
      "                        (seed, degraded, exaggeration, arrival_rate,\n"
      "                        heavy_arrival_rate, pool_mbps,\n"
      "                        access_capacity_mbps, video_duration,\n"
      "                        run_duration, crash_at, restart_at,\n"
      "                        churn_join_at, churn_leave_at, faults)\n"
      "  scale         E17    million-session sector-partitioned world\n"
      "                        (mode, seed, sessions, sectors, threads,\n"
      "                        run_duration, video_duration, barrier_period,\n"
      "                        access_capacity_mbps, headroom_fraction,\n"
      "                        diurnal, diurnal_night_frac, arrival_window,\n"
      "                        elide); e.g.\n"
      "                        eona_lab scale --sessions=1000000 --sectors=4096\n"
      "                        threads and elide change wall-clock only,\n"
      "                        never output\n"
      "mode is baseline|eona|oracle; --series=csv dumps recorded time series.\n"
      "--faults=PLAN injects a chaos plan (every scenario; scale and cellular\n"
      "accept only the empty plan), e.g.\n"
      "  eona_lab failover mode=eona --faults='down:X@B@120;up:X@B@180'\n"
      "plan grammar: kind:target@t[:factor] clauses joined by ';', where kind\n"
      "is down|up|brownout|crash|restart, target is a topology link name,\n"
      "cdn/serverindex, or the literal 'exchange' (crash/restart only -- the\n"
      "broker itself dies and returns), and factor is the brownout's\n"
      "remaining fraction. Malformed clauses are rejected with the offending\n"
      "token and its byte position.\n"
      "--trace=FILE writes the run's JSONL event trace (bit-identical for a\n"
      "fixed seed, for any sweep thread count).\n"
      "--store=FILE ingests the run's events into the columnar telemetry\n"
      "store and dumps its rows as JSONL; `eona_lab query` loads such a dump\n"
      "(or a --trace file) and runs one aggregate plan against it. With no\n"
      "metric= the query subcommand lists the queryable metrics.\n"
      "sweep fans {seeds} x {modes} across a thread pool (threads=0 = all\n"
      "cores) and prints one collated JSON document; the output is identical\n"
      "for any thread count.\n"
      "--perf prints wall-clock seconds, events/sec, peak RSS, and (for\n"
      "barrier-scheduled scenarios) the phase breakdown -- barrier_rounds,\n"
      "sectors_dispatched/elided, parallel_advance/serial_barrier seconds,\n"
      "serial_fraction -- plus the broker counters clamp_count, rate_limited\n"
      "and epoch_rejected -- as JSON on stderr (stdout stays the byte-stable\n"
      "scenario result).\n"
      "overrides may also be spelled --key=value.\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2 && std::string(argv[1]) == "sweep")
      return run_sweep_cmd(argc, argv);
    if (argc >= 2 && std::string(argv[1]) == "query")
      return run_query_cmd(argc, argv);
    Args args = parse_args(argc, argv, 1);
    if (args.scenario.empty() || args.scenario == "list") {
      usage();
      return 0;
    }
    // Unknown subcommand: full usage (every scenario plus sweep/query/list)
    // on stderr, non-zero exit -- so a typo never reads as an empty success.
    const auto& names = scenarios::scenario_names();
    if (std::find(names.begin(), names.end(), args.scenario) == names.end()) {
      std::fprintf(stderr, "eona_lab: unknown subcommand '%s'\n\n",
                   args.scenario.c_str());
      usage(stderr);
      return 2;
    }
    return run_single(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "eona_lab: %s\n", e.what());
    return 1;
  }
}
