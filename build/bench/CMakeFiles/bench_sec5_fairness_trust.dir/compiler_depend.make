# Empty compiler generated dependencies file for bench_sec5_fairness_trust.
# This may be replaced when dependencies are built.
