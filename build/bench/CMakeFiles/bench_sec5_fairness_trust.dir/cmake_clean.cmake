file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_fairness_trust.dir/bench_sec5_fairness_trust.cpp.o"
  "CMakeFiles/bench_sec5_fairness_trust.dir/bench_sec5_fairness_trust.cpp.o.d"
  "bench_sec5_fairness_trust"
  "bench_sec5_fairness_trust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_fairness_trust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
