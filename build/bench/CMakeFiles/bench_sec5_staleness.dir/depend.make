# Empty dependencies file for bench_sec5_staleness.
# This may be replaced when dependencies are built.
