file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_staleness.dir/bench_sec5_staleness.cpp.o"
  "CMakeFiles/bench_sec5_staleness.dir/bench_sec5_staleness.cpp.o.d"
  "bench_sec5_staleness"
  "bench_sec5_staleness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_staleness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
