file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_flashcrowd.dir/bench_fig3_flashcrowd.cpp.o"
  "CMakeFiles/bench_fig3_flashcrowd.dir/bench_fig3_flashcrowd.cpp.o.d"
  "bench_fig3_flashcrowd"
  "bench_fig3_flashcrowd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_flashcrowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
