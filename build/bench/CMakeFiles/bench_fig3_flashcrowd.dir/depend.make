# Empty dependencies file for bench_fig3_flashcrowd.
# This may be replaced when dependencies are built.
