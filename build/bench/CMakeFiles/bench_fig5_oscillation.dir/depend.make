# Empty dependencies file for bench_fig5_oscillation.
# This may be replaced when dependencies are built.
