file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_oscillation.dir/bench_fig5_oscillation.cpp.o"
  "CMakeFiles/bench_fig5_oscillation.dir/bench_fig5_oscillation.cpp.o.d"
  "bench_fig5_oscillation"
  "bench_fig5_oscillation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_oscillation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
