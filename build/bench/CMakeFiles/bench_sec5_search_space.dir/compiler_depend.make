# Empty compiler generated dependencies file for bench_sec5_search_space.
# This may be replaced when dependencies are built.
