file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_search_space.dir/bench_sec5_search_space.cpp.o"
  "CMakeFiles/bench_sec5_search_space.dir/bench_sec5_search_space.cpp.o.d"
  "bench_sec5_search_space"
  "bench_sec5_search_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_search_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
