file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_scalability.dir/bench_sec5_scalability.cpp.o"
  "CMakeFiles/bench_sec5_scalability.dir/bench_sec5_scalability.cpp.o.d"
  "bench_sec5_scalability"
  "bench_sec5_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
