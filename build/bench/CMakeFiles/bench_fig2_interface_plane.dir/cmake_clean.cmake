file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_interface_plane.dir/bench_fig2_interface_plane.cpp.o"
  "CMakeFiles/bench_fig2_interface_plane.dir/bench_fig2_interface_plane.cpp.o.d"
  "bench_fig2_interface_plane"
  "bench_fig2_interface_plane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_interface_plane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
