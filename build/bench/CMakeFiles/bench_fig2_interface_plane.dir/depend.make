# Empty dependencies file for bench_fig2_interface_plane.
# This may be replaced when dependencies are built.
