file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_dampening.dir/bench_sec5_dampening.cpp.o"
  "CMakeFiles/bench_sec5_dampening.dir/bench_sec5_dampening.cpp.o.d"
  "bench_sec5_dampening"
  "bench_sec5_dampening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_dampening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
