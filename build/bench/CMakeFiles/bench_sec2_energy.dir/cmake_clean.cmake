file(REMOVE_RECURSE
  "CMakeFiles/bench_sec2_energy.dir/bench_sec2_energy.cpp.o"
  "CMakeFiles/bench_sec2_energy.dir/bench_sec2_energy.cpp.o.d"
  "bench_sec2_energy"
  "bench_sec2_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec2_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
