# Empty dependencies file for bench_sec2_energy.
# This may be replaced when dependencies are built.
