# Empty dependencies file for bench_sec2_coarse_control.
# This may be replaced when dependencies are built.
