file(REMOVE_RECURSE
  "CMakeFiles/bench_sec2_coarse_control.dir/bench_sec2_coarse_control.cpp.o"
  "CMakeFiles/bench_sec2_coarse_control.dir/bench_sec2_coarse_control.cpp.o.d"
  "bench_sec2_coarse_control"
  "bench_sec2_coarse_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec2_coarse_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
