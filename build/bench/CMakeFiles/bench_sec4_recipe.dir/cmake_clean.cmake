file(REMOVE_RECURSE
  "CMakeFiles/bench_sec4_recipe.dir/bench_sec4_recipe.cpp.o"
  "CMakeFiles/bench_sec4_recipe.dir/bench_sec4_recipe.cpp.o.d"
  "bench_sec4_recipe"
  "bench_sec4_recipe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4_recipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
