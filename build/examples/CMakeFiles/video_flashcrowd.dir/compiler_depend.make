# Empty compiler generated dependencies file for video_flashcrowd.
# This may be replaced when dependencies are built.
