
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/video_flashcrowd.cpp" "examples/CMakeFiles/video_flashcrowd.dir/video_flashcrowd.cpp.o" "gcc" "examples/CMakeFiles/video_flashcrowd.dir/video_flashcrowd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenarios/CMakeFiles/eona_scenarios.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/eona_control.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/eona_app.dir/DependInfo.cmake"
  "/root/repo/build/src/eona/CMakeFiles/eona_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eona_net.dir/DependInfo.cmake"
  "/root/repo/build/src/qoe/CMakeFiles/eona_qoe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
