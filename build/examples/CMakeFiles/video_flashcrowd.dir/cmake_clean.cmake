file(REMOVE_RECURSE
  "CMakeFiles/video_flashcrowd.dir/video_flashcrowd.cpp.o"
  "CMakeFiles/video_flashcrowd.dir/video_flashcrowd.cpp.o.d"
  "video_flashcrowd"
  "video_flashcrowd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_flashcrowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
