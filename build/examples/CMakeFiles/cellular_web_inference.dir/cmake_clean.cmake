file(REMOVE_RECURSE
  "CMakeFiles/cellular_web_inference.dir/cellular_web_inference.cpp.o"
  "CMakeFiles/cellular_web_inference.dir/cellular_web_inference.cpp.o.d"
  "cellular_web_inference"
  "cellular_web_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellular_web_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
