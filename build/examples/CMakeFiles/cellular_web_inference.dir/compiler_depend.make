# Empty compiler generated dependencies file for cellular_web_inference.
# This may be replaced when dependencies are built.
