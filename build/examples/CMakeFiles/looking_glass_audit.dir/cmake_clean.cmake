file(REMOVE_RECURSE
  "CMakeFiles/looking_glass_audit.dir/looking_glass_audit.cpp.o"
  "CMakeFiles/looking_glass_audit.dir/looking_glass_audit.cpp.o.d"
  "looking_glass_audit"
  "looking_glass_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/looking_glass_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
