# Empty dependencies file for looking_glass_audit.
# This may be replaced when dependencies are built.
