file(REMOVE_RECURSE
  "CMakeFiles/peering_oscillation.dir/peering_oscillation.cpp.o"
  "CMakeFiles/peering_oscillation.dir/peering_oscillation.cpp.o.d"
  "peering_oscillation"
  "peering_oscillation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peering_oscillation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
