# Empty dependencies file for peering_oscillation.
# This may be replaced when dependencies are built.
