file(REMOVE_RECURSE
  "CMakeFiles/telemetry_stats_test.dir/telemetry_stats_test.cpp.o"
  "CMakeFiles/telemetry_stats_test.dir/telemetry_stats_test.cpp.o.d"
  "telemetry_stats_test"
  "telemetry_stats_test.pdb"
  "telemetry_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
