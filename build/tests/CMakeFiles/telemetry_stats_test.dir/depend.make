# Empty dependencies file for telemetry_stats_test.
# This may be replaced when dependencies are built.
