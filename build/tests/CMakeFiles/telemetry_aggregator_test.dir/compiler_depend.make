# Empty compiler generated dependencies file for telemetry_aggregator_test.
# This may be replaced when dependencies are built.
