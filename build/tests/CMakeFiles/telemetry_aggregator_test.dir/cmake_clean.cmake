file(REMOVE_RECURSE
  "CMakeFiles/telemetry_aggregator_test.dir/telemetry_aggregator_test.cpp.o"
  "CMakeFiles/telemetry_aggregator_test.dir/telemetry_aggregator_test.cpp.o.d"
  "telemetry_aggregator_test"
  "telemetry_aggregator_test.pdb"
  "telemetry_aggregator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_aggregator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
