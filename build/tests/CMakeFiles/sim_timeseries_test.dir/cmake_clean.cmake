file(REMOVE_RECURSE
  "CMakeFiles/sim_timeseries_test.dir/sim_timeseries_test.cpp.o"
  "CMakeFiles/sim_timeseries_test.dir/sim_timeseries_test.cpp.o.d"
  "sim_timeseries_test"
  "sim_timeseries_test.pdb"
  "sim_timeseries_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_timeseries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
