file(REMOVE_RECURSE
  "CMakeFiles/qoe_video_test.dir/qoe_video_test.cpp.o"
  "CMakeFiles/qoe_video_test.dir/qoe_video_test.cpp.o.d"
  "qoe_video_test"
  "qoe_video_test.pdb"
  "qoe_video_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qoe_video_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
