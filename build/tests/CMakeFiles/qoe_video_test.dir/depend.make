# Empty dependencies file for qoe_video_test.
# This may be replaced when dependencies are built.
