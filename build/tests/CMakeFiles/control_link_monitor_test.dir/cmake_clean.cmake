file(REMOVE_RECURSE
  "CMakeFiles/control_link_monitor_test.dir/control_link_monitor_test.cpp.o"
  "CMakeFiles/control_link_monitor_test.dir/control_link_monitor_test.cpp.o.d"
  "control_link_monitor_test"
  "control_link_monitor_test.pdb"
  "control_link_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_link_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
