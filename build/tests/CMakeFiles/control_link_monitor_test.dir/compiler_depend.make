# Empty compiler generated dependencies file for control_link_monitor_test.
# This may be replaced when dependencies are built.
