# Empty dependencies file for control_energy_test.
# This may be replaced when dependencies are built.
