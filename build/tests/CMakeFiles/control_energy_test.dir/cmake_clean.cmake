file(REMOVE_RECURSE
  "CMakeFiles/control_energy_test.dir/control_energy_test.cpp.o"
  "CMakeFiles/control_energy_test.dir/control_energy_test.cpp.o.d"
  "control_energy_test"
  "control_energy_test.pdb"
  "control_energy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_energy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
