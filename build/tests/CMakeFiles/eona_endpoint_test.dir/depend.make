# Empty dependencies file for eona_endpoint_test.
# This may be replaced when dependencies are built.
