file(REMOVE_RECURSE
  "CMakeFiles/eona_endpoint_test.dir/eona_endpoint_test.cpp.o"
  "CMakeFiles/eona_endpoint_test.dir/eona_endpoint_test.cpp.o.d"
  "eona_endpoint_test"
  "eona_endpoint_test.pdb"
  "eona_endpoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eona_endpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
