# Empty compiler generated dependencies file for net_peering_test.
# This may be replaced when dependencies are built.
