file(REMOVE_RECURSE
  "CMakeFiles/net_peering_test.dir/net_peering_test.cpp.o"
  "CMakeFiles/net_peering_test.dir/net_peering_test.cpp.o.d"
  "net_peering_test"
  "net_peering_test.pdb"
  "net_peering_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_peering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
