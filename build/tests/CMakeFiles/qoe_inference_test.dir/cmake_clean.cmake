file(REMOVE_RECURSE
  "CMakeFiles/qoe_inference_test.dir/qoe_inference_test.cpp.o"
  "CMakeFiles/qoe_inference_test.dir/qoe_inference_test.cpp.o.d"
  "qoe_inference_test"
  "qoe_inference_test.pdb"
  "qoe_inference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qoe_inference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
