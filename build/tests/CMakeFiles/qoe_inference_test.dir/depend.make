# Empty dependencies file for qoe_inference_test.
# This may be replaced when dependencies are built.
