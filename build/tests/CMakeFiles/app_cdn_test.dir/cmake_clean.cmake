file(REMOVE_RECURSE
  "CMakeFiles/app_cdn_test.dir/app_cdn_test.cpp.o"
  "CMakeFiles/app_cdn_test.dir/app_cdn_test.cpp.o.d"
  "app_cdn_test"
  "app_cdn_test.pdb"
  "app_cdn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_cdn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
