# Empty compiler generated dependencies file for app_cdn_test.
# This may be replaced when dependencies are built.
