# Empty dependencies file for control_dampening_test.
# This may be replaced when dependencies are built.
