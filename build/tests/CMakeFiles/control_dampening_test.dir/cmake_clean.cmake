file(REMOVE_RECURSE
  "CMakeFiles/control_dampening_test.dir/control_dampening_test.cpp.o"
  "CMakeFiles/control_dampening_test.dir/control_dampening_test.cpp.o.d"
  "control_dampening_test"
  "control_dampening_test.pdb"
  "control_dampening_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_dampening_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
