file(REMOVE_RECURSE
  "CMakeFiles/control_infp_test.dir/control_infp_test.cpp.o"
  "CMakeFiles/control_infp_test.dir/control_infp_test.cpp.o.d"
  "control_infp_test"
  "control_infp_test.pdb"
  "control_infp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_infp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
