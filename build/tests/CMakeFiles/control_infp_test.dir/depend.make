# Empty dependencies file for control_infp_test.
# This may be replaced when dependencies are built.
