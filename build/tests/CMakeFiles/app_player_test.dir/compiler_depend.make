# Empty compiler generated dependencies file for app_player_test.
# This may be replaced when dependencies are built.
