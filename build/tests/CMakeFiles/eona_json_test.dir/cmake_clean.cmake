file(REMOVE_RECURSE
  "CMakeFiles/eona_json_test.dir/eona_json_test.cpp.o"
  "CMakeFiles/eona_json_test.dir/eona_json_test.cpp.o.d"
  "eona_json_test"
  "eona_json_test.pdb"
  "eona_json_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eona_json_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
