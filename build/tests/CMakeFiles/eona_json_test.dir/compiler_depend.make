# Empty compiler generated dependencies file for eona_json_test.
# This may be replaced when dependencies are built.
