file(REMOVE_RECURSE
  "CMakeFiles/control_appp_test.dir/control_appp_test.cpp.o"
  "CMakeFiles/control_appp_test.dir/control_appp_test.cpp.o.d"
  "control_appp_test"
  "control_appp_test.pdb"
  "control_appp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_appp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
