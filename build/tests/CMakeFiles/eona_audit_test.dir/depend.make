# Empty dependencies file for eona_audit_test.
# This may be replaced when dependencies are built.
