file(REMOVE_RECURSE
  "CMakeFiles/eona_audit_test.dir/eona_audit_test.cpp.o"
  "CMakeFiles/eona_audit_test.dir/eona_audit_test.cpp.o.d"
  "eona_audit_test"
  "eona_audit_test.pdb"
  "eona_audit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eona_audit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
