file(REMOVE_RECURSE
  "CMakeFiles/net_fairshare_test.dir/net_fairshare_test.cpp.o"
  "CMakeFiles/net_fairshare_test.dir/net_fairshare_test.cpp.o.d"
  "net_fairshare_test"
  "net_fairshare_test.pdb"
  "net_fairshare_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_fairshare_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
