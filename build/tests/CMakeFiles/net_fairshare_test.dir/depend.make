# Empty dependencies file for net_fairshare_test.
# This may be replaced when dependencies are built.
