file(REMOVE_RECURSE
  "CMakeFiles/net_transfer_test.dir/net_transfer_test.cpp.o"
  "CMakeFiles/net_transfer_test.dir/net_transfer_test.cpp.o.d"
  "net_transfer_test"
  "net_transfer_test.pdb"
  "net_transfer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_transfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
