file(REMOVE_RECURSE
  "CMakeFiles/qoe_web_test.dir/qoe_web_test.cpp.o"
  "CMakeFiles/qoe_web_test.dir/qoe_web_test.cpp.o.d"
  "qoe_web_test"
  "qoe_web_test.pdb"
  "qoe_web_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qoe_web_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
