# Empty dependencies file for qoe_web_test.
# This may be replaced when dependencies are built.
