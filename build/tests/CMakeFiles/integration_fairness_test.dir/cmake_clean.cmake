file(REMOVE_RECURSE
  "CMakeFiles/integration_fairness_test.dir/integration_fairness_test.cpp.o"
  "CMakeFiles/integration_fairness_test.dir/integration_fairness_test.cpp.o.d"
  "integration_fairness_test"
  "integration_fairness_test.pdb"
  "integration_fairness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_fairness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
