file(REMOVE_RECURSE
  "CMakeFiles/app_player_behavior_test.dir/app_player_behavior_test.cpp.o"
  "CMakeFiles/app_player_behavior_test.dir/app_player_behavior_test.cpp.o.d"
  "app_player_behavior_test"
  "app_player_behavior_test.pdb"
  "app_player_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_player_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
