# Empty dependencies file for eona_recipe_test.
# This may be replaced when dependencies are built.
