file(REMOVE_RECURSE
  "CMakeFiles/eona_recipe_test.dir/eona_recipe_test.cpp.o"
  "CMakeFiles/eona_recipe_test.dir/eona_recipe_test.cpp.o.d"
  "eona_recipe_test"
  "eona_recipe_test.pdb"
  "eona_recipe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eona_recipe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
