file(REMOVE_RECURSE
  "CMakeFiles/control_whatif_test.dir/control_whatif_test.cpp.o"
  "CMakeFiles/control_whatif_test.dir/control_whatif_test.cpp.o.d"
  "control_whatif_test"
  "control_whatif_test.pdb"
  "control_whatif_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_whatif_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
