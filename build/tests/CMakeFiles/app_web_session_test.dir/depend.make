# Empty dependencies file for app_web_session_test.
# This may be replaced when dependencies are built.
