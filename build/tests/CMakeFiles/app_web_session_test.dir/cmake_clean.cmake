file(REMOVE_RECURSE
  "CMakeFiles/app_web_session_test.dir/app_web_session_test.cpp.o"
  "CMakeFiles/app_web_session_test.dir/app_web_session_test.cpp.o.d"
  "app_web_session_test"
  "app_web_session_test.pdb"
  "app_web_session_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_web_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
