file(REMOVE_RECURSE
  "CMakeFiles/qoe_infogain_test.dir/qoe_infogain_test.cpp.o"
  "CMakeFiles/qoe_infogain_test.dir/qoe_infogain_test.cpp.o.d"
  "qoe_infogain_test"
  "qoe_infogain_test.pdb"
  "qoe_infogain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qoe_infogain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
