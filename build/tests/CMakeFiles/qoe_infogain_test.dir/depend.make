# Empty dependencies file for qoe_infogain_test.
# This may be replaced when dependencies are built.
