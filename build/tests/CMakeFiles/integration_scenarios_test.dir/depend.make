# Empty dependencies file for integration_scenarios_test.
# This may be replaced when dependencies are built.
