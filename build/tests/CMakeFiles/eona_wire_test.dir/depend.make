# Empty dependencies file for eona_wire_test.
# This may be replaced when dependencies are built.
