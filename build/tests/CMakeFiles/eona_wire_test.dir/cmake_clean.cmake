file(REMOVE_RECURSE
  "CMakeFiles/eona_wire_test.dir/eona_wire_test.cpp.o"
  "CMakeFiles/eona_wire_test.dir/eona_wire_test.cpp.o.d"
  "eona_wire_test"
  "eona_wire_test.pdb"
  "eona_wire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eona_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
