file(REMOVE_RECURSE
  "CMakeFiles/control_oracle_test.dir/control_oracle_test.cpp.o"
  "CMakeFiles/control_oracle_test.dir/control_oracle_test.cpp.o.d"
  "control_oracle_test"
  "control_oracle_test.pdb"
  "control_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
