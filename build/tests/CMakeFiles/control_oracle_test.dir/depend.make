# Empty dependencies file for control_oracle_test.
# This may be replaced when dependencies are built.
