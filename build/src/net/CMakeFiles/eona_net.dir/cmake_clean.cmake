file(REMOVE_RECURSE
  "CMakeFiles/eona_net.dir/fairshare.cpp.o"
  "CMakeFiles/eona_net.dir/fairshare.cpp.o.d"
  "CMakeFiles/eona_net.dir/network.cpp.o"
  "CMakeFiles/eona_net.dir/network.cpp.o.d"
  "CMakeFiles/eona_net.dir/routing.cpp.o"
  "CMakeFiles/eona_net.dir/routing.cpp.o.d"
  "libeona_net.a"
  "libeona_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eona_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
