file(REMOVE_RECURSE
  "libeona_net.a"
)
