# Empty dependencies file for eona_net.
# This may be replaced when dependencies are built.
