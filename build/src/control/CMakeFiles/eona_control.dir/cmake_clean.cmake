file(REMOVE_RECURSE
  "CMakeFiles/eona_control.dir/appp.cpp.o"
  "CMakeFiles/eona_control.dir/appp.cpp.o.d"
  "CMakeFiles/eona_control.dir/energy.cpp.o"
  "CMakeFiles/eona_control.dir/energy.cpp.o.d"
  "CMakeFiles/eona_control.dir/infp.cpp.o"
  "CMakeFiles/eona_control.dir/infp.cpp.o.d"
  "CMakeFiles/eona_control.dir/whatif.cpp.o"
  "CMakeFiles/eona_control.dir/whatif.cpp.o.d"
  "libeona_control.a"
  "libeona_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eona_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
