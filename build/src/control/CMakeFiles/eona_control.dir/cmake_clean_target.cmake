file(REMOVE_RECURSE
  "libeona_control.a"
)
