# Empty compiler generated dependencies file for eona_control.
# This may be replaced when dependencies are built.
