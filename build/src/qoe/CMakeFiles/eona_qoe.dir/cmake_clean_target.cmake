file(REMOVE_RECURSE
  "libeona_qoe.a"
)
