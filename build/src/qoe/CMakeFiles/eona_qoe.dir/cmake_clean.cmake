file(REMOVE_RECURSE
  "CMakeFiles/eona_qoe.dir/inference.cpp.o"
  "CMakeFiles/eona_qoe.dir/inference.cpp.o.d"
  "CMakeFiles/eona_qoe.dir/infogain.cpp.o"
  "CMakeFiles/eona_qoe.dir/infogain.cpp.o.d"
  "libeona_qoe.a"
  "libeona_qoe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eona_qoe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
