# Empty compiler generated dependencies file for eona_qoe.
# This may be replaced when dependencies are built.
