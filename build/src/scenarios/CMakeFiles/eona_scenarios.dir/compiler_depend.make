# Empty compiler generated dependencies file for eona_scenarios.
# This may be replaced when dependencies are built.
