file(REMOVE_RECURSE
  "libeona_scenarios.a"
)
