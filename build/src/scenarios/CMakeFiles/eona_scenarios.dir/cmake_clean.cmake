file(REMOVE_RECURSE
  "CMakeFiles/eona_scenarios.dir/cellular_web.cpp.o"
  "CMakeFiles/eona_scenarios.dir/cellular_web.cpp.o.d"
  "CMakeFiles/eona_scenarios.dir/coarse_control.cpp.o"
  "CMakeFiles/eona_scenarios.dir/coarse_control.cpp.o.d"
  "CMakeFiles/eona_scenarios.dir/energy.cpp.o"
  "CMakeFiles/eona_scenarios.dir/energy.cpp.o.d"
  "CMakeFiles/eona_scenarios.dir/fairness.cpp.o"
  "CMakeFiles/eona_scenarios.dir/fairness.cpp.o.d"
  "CMakeFiles/eona_scenarios.dir/flashcrowd.cpp.o"
  "CMakeFiles/eona_scenarios.dir/flashcrowd.cpp.o.d"
  "CMakeFiles/eona_scenarios.dir/oscillation.cpp.o"
  "CMakeFiles/eona_scenarios.dir/oscillation.cpp.o.d"
  "libeona_scenarios.a"
  "libeona_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eona_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
