file(REMOVE_RECURSE
  "CMakeFiles/eona_app.dir/video_player.cpp.o"
  "CMakeFiles/eona_app.dir/video_player.cpp.o.d"
  "libeona_app.a"
  "libeona_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eona_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
