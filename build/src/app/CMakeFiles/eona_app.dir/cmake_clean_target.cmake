file(REMOVE_RECURSE
  "libeona_app.a"
)
