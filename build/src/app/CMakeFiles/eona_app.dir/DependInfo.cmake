
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/video_player.cpp" "src/app/CMakeFiles/eona_app.dir/video_player.cpp.o" "gcc" "src/app/CMakeFiles/eona_app.dir/video_player.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/eona_net.dir/DependInfo.cmake"
  "/root/repo/build/src/qoe/CMakeFiles/eona_qoe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
