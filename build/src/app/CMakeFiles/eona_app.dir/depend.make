# Empty dependencies file for eona_app.
# This may be replaced when dependencies are built.
