# Empty dependencies file for eona_core.
# This may be replaced when dependencies are built.
