file(REMOVE_RECURSE
  "CMakeFiles/eona_core.dir/audit.cpp.o"
  "CMakeFiles/eona_core.dir/audit.cpp.o.d"
  "CMakeFiles/eona_core.dir/json.cpp.o"
  "CMakeFiles/eona_core.dir/json.cpp.o.d"
  "CMakeFiles/eona_core.dir/recipe.cpp.o"
  "CMakeFiles/eona_core.dir/recipe.cpp.o.d"
  "CMakeFiles/eona_core.dir/wire.cpp.o"
  "CMakeFiles/eona_core.dir/wire.cpp.o.d"
  "libeona_core.a"
  "libeona_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eona_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
