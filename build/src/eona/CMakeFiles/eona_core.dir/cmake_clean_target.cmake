file(REMOVE_RECURSE
  "libeona_core.a"
)
