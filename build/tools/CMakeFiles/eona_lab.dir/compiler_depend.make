# Empty compiler generated dependencies file for eona_lab.
# This may be replaced when dependencies are built.
