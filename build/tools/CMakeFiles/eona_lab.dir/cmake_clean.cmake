file(REMOVE_RECURSE
  "CMakeFiles/eona_lab.dir/eona_lab.cpp.o"
  "CMakeFiles/eona_lab.dir/eona_lab.cpp.o.d"
  "eona_lab"
  "eona_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eona_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
