// E17 (§5 scalability): million-session worlds under sector-parallel
// execution.
//
// Three parts:
//
//  1. Equivalence. The scale scenario must produce byte-identical JSON when
//     the sector rounds run serially (threads=1) and on a worker pool
//     (threads=2, 4), for seeds 1..5. This is the correctness contract that
//     makes the parallelism free: sectors share no mutable state between
//     barriers and the coordinator is serial in sector order.
//
//  2. Speedup. One mid-size config timed at threads=1 vs threads=N
//     (hardware count). On a single-core container the ratio hovers around
//     1.0 -- the number is reported, not thresholded, because the identity
//     in part 1 is what CI can actually pin.
//
//  3. The headline run. sessions=EONA_SCALE_SESSIONS (default one million)
//     across EONA_SCALE_SECTORS cells: wall-clock, events/sec, exact
//     admission, and peak-RSS-derived bytes/session.
//
// Verdicts (acceptance thresholds):
//  * sector-parallel output is byte-identical to serial for every seed;
//  * a repeated run reproduces bit-identical output;
//  * the headline run admits exactly the configured session count and
//    completes (events > 0, every sector audited).
//
// Always writes a machine-readable JSON summary; path defaults to
// BENCH_scale.json, overridden by argv[1] or EONA_BENCH_OUT.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <thread>

#include "eona/json.hpp"
#include "scenarios/lab.hpp"
#include "scenarios/scale.hpp"

using namespace eona;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

long long peak_rss_bytes() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<long long>(usage.ru_maxrss) * 1024;
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? static_cast<std::size_t>(std::stoull(value))
                          : fallback;
}

/// Small identity config: enough sectors and barrier rounds to exercise the
/// coordinator, small enough to run 15 times in seconds.
std::map<std::string, std::string> identity_overrides(std::uint64_t seed,
                                                      std::size_t threads) {
  return {{"seed", std::to_string(seed)},
          {"threads", std::to_string(threads)},
          {"sessions", "2000"},
          {"sectors", "32"},
          {"run_duration", "300"},
          {"video_duration", "60"},
          {"barrier_period", "20"}};
}

scenarios::ScaleConfig headline_config(std::size_t sessions,
                                       std::size_t sectors,
                                       std::size_t threads) {
  scenarios::ScaleConfig config;
  config.seed = 42;
  config.sessions = sessions;
  config.sectors = sectors;
  config.threads = threads;
  return config;  // defaults: 600 s run, 120 s videos, 30 s barriers
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_scale.json";
  if (const char* env = std::getenv("EONA_BENCH_OUT")) out_path = env;
  if (argc > 1) out_path = argv[1];

  unsigned hw = std::thread::hardware_concurrency();
  std::size_t threads = env_size("EONA_SCALE_THREADS", hw == 0 ? 1 : hw);
  std::size_t sessions = env_size("EONA_SCALE_SESSIONS", 1'000'000);
  // Sector sizing: ~250 sessions per cell keeps the per-event dirty
  // component (concurrent flows on the cell's access link) around 60.
  std::size_t sectors =
      env_size("EONA_SCALE_SECTORS", std::max<std::size_t>(1, sessions / 250));

  std::printf("=== E17 / Sec 5: million-session sector-parallel worlds ===\n");
  std::printf("sessions=%zu sectors=%zu threads=%zu\n\n", sessions, sectors,
              threads);

  // --- part 1: serial vs parallel byte-identity, seeds 1..5 ---------------
  std::printf("--- equivalence: serial vs sector-parallel, seeds 1..5 ---\n");
  core::JsonValue identity_rows = core::JsonValue::array();
  bool all_identical = true;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    std::string serial =
        scenarios::run_scenario_json("scale", identity_overrides(seed, 1))
            .dump(2);
    bool ok = true;
    for (std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
      std::string parallel =
          scenarios::run_scenario_json("scale",
                                       identity_overrides(seed, workers))
              .dump(2);
      ok = ok && parallel == serial;
    }
    all_identical = all_identical && ok;
    std::printf("seed %llu: %s\n", static_cast<unsigned long long>(seed),
                ok ? "byte-identical" : "DIVERGED");
    core::JsonValue row = core::JsonValue::object();
    row.set("seed", core::JsonValue::number(static_cast<double>(seed)));
    row.set("byte_identical", core::JsonValue::boolean(ok));
    identity_rows.push_back(std::move(row));
  }

  std::printf("\n--- reproducibility: seed 3, threads=2, twice ---\n");
  std::string once =
      scenarios::run_scenario_json("scale", identity_overrides(3, 2)).dump(2);
  std::string twice =
      scenarios::run_scenario_json("scale", identity_overrides(3, 2)).dump(2);
  bool reproducible = once == twice;
  std::printf("%s\n", reproducible ? "bit-identical" : "DIVERGED");

  // --- part 2: speedup on a mid-size config -------------------------------
  std::printf("\n--- speedup: %zu sessions, threads 1 vs %zu ---\n",
              std::min<std::size_t>(sessions, 20'000), threads);
  scenarios::ScaleConfig mid = headline_config(
      std::min<std::size_t>(sessions, 20'000),
      std::max<std::size_t>(1, std::min<std::size_t>(sessions, 20'000) / 250),
      1);
  auto t0 = std::chrono::steady_clock::now();
  scenarios::ScaleResult serial_mid = scenarios::run_scale(mid);
  double serial_wall = seconds_since(t0);
  mid.threads = threads;
  t0 = std::chrono::steady_clock::now();
  scenarios::ScaleResult parallel_mid = scenarios::run_scale(mid);
  double parallel_wall = seconds_since(t0);
  double speedup = parallel_wall > 0.0 ? serial_wall / parallel_wall : 0.0;
  bool mid_equivalent =
      serial_mid.events == parallel_mid.events &&
      serial_mid.qoe.mean_engagement == parallel_mid.qoe.mean_engagement &&
      serial_mid.reallocations == parallel_mid.reallocations;
  std::printf("serial   %7.2f s\nparallel %7.2f s   speedup %.2fx (%s)\n",
              serial_wall, parallel_wall, speedup,
              mid_equivalent ? "outputs match" : "OUTPUTS DIVERGED");

  // --- part 3: the headline run -------------------------------------------
  std::printf("\n--- headline: %zu sessions over %zu sectors ---\n", sessions,
              sectors);
  long long rss_before = peak_rss_bytes();
  scenarios::ScaleConfig big = headline_config(sessions, sectors, threads);
  t0 = std::chrono::steady_clock::now();
  scenarios::ScaleResult r = scenarios::run_scale(big);
  double big_wall = seconds_since(t0);
  long long rss_after = peak_rss_bytes();
  double events_per_sec =
      big_wall > 0.0 ? static_cast<double>(r.events) / big_wall : 0.0;
  double bytes_per_session =
      static_cast<double>(rss_after - rss_before) /
      static_cast<double>(sessions);
  bool exact = r.arrivals == sessions && r.qoe.sessions == sessions;
  bool completed = r.events > 0 && r.barrier_rounds > 0;
  std::printf("wall          %9.1f s\n", big_wall);
  std::printf("events        %9llu   (%.0f events/s)\n",
              static_cast<unsigned long long>(r.events), events_per_sec);
  std::printf("admitted      %9llu   (exact: %s)\n",
              static_cast<unsigned long long>(r.arrivals),
              exact ? "yes" : "NO");
  std::printf("peak conc.    %9zu sessions\n", r.peak_concurrent);
  std::printf("reallocations %9llu headroom grants\n",
              static_cast<unsigned long long>(r.reallocations));
  std::printf("memory        %9.0f bytes/session (peak RSS delta %lld MB)\n",
              bytes_per_session, (rss_after - rss_before) / (1024 * 1024));

  bool pass = all_identical && reproducible && mid_equivalent && exact &&
              completed;
  std::printf("\n%s\n", pass ? "PASS" : "FAIL");

  core::JsonValue doc = core::JsonValue::object();
  doc.set("bench", core::JsonValue::string("scale"));
  core::JsonValue cfg = core::JsonValue::object();
  cfg.set("sessions", core::JsonValue::number(static_cast<double>(sessions)));
  cfg.set("sectors", core::JsonValue::number(static_cast<double>(sectors)));
  cfg.set("threads", core::JsonValue::number(static_cast<double>(threads)));
  doc.set("config", std::move(cfg));
  doc.set("identity", std::move(identity_rows));
  core::JsonValue sp = core::JsonValue::object();
  sp.set("serial_wall_seconds", core::JsonValue::number(serial_wall));
  sp.set("parallel_wall_seconds", core::JsonValue::number(parallel_wall));
  sp.set("speedup", core::JsonValue::number(speedup));
  doc.set("speedup", std::move(sp));
  core::JsonValue head = core::JsonValue::object();
  head.set("wall_seconds", core::JsonValue::number(big_wall));
  head.set("events", core::JsonValue::number(static_cast<double>(r.events)));
  head.set("events_per_sec", core::JsonValue::number(events_per_sec));
  head.set("arrivals",
           core::JsonValue::number(static_cast<double>(r.arrivals)));
  head.set("peak_concurrent",
           core::JsonValue::number(static_cast<double>(r.peak_concurrent)));
  head.set("reallocations",
           core::JsonValue::number(static_cast<double>(r.reallocations)));
  head.set("barrier_rounds",
           core::JsonValue::number(static_cast<double>(r.barrier_rounds)));
  head.set("bytes_per_session", core::JsonValue::number(bytes_per_session));
  head.set("peak_rss_bytes",
           core::JsonValue::number(static_cast<double>(rss_after)));
  head.set("mean_engagement",
           core::JsonValue::number(r.qoe.mean_engagement));
  head.set("mean_buffering", core::JsonValue::number(r.qoe.mean_buffering));
  doc.set("headline", std::move(head));
  core::JsonValue verdicts = core::JsonValue::object();
  verdicts.set("parallel_byte_identical",
               core::JsonValue::boolean(all_identical));
  verdicts.set("reproducible", core::JsonValue::boolean(reproducible));
  verdicts.set("speedup_outputs_match",
               core::JsonValue::boolean(mid_equivalent));
  verdicts.set("exact_admission", core::JsonValue::boolean(exact));
  verdicts.set("completed", core::JsonValue::boolean(completed));
  doc.set("verdicts", std::move(verdicts));

  std::string text = doc.dump(2);
  std::ofstream out(out_path, std::ios::binary);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out << "\n";
  std::printf("wrote %s\n", out_path.c_str());
  return pass ? 0 : 1;
}
