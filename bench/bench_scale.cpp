// E17/E18 (§5 scalability): million-session worlds under sector-parallel
// execution with quiescence-aware barrier rounds.
//
// Five parts:
//
//  1. Equivalence. The scale scenario must produce byte-identical JSON when
//     the sector rounds run serially (threads=1) and on a worker pool
//     (threads=2, 4), for seeds 1..5. This is the correctness contract that
//     makes the parallelism free: sectors share no mutable state between
//     barriers and the coordinator is serial in sector order.
//
//  2. Elision equivalence. On a quiet-tail config (arrival window closes
//     well before the run ends) the scenario must produce byte-identical
//     JSON with quiescent-sector elision on and off, for seeds 1..5. This
//     is the contract that makes skipping idle sectors free: a deferred
//     clock catch-up fires exactly the events the skipped rounds would
//     have.
//
//  3. Speedup. One mid-size config timed at threads=1 vs threads=N
//     (hardware count). On a single-core container the ratio hovers around
//     1.0 -- the number is reported, not thresholded, because the identity
//     in part 1 is what CI can actually pin.
//
//  4. The headline run. sessions=EONA_SCALE_SESSIONS (default one million)
//     across EONA_SCALE_SECTORS cells: wall-clock, events/sec, exact
//     admission, peak-RSS-derived bytes/session, and the serial/parallel
//     phase breakdown from RunPerf. EONA_SCALE_ELIDE=0 turns elision off so
//     CI can produce a full-dispatch reference artifact.
//
//  5. Off-peak diurnal (E18). sessions=EONA_SCALE_DIURNAL_SESSIONS (default
//     250k) on a dead-of-night diurnal profile (night rate 0) with a quiet
//     tail, run with elision off then on: events/s for both, the wall-clock
//     ratio, and the elided-sector count. This is the workload elision is
//     for -- whole sectors drain during the trough.
//
// Verdicts (acceptance thresholds):
//  * sector-parallel output is byte-identical to serial for every seed;
//  * elision-on output is byte-identical to elision-off for every seed;
//  * a repeated run reproduces bit-identical output;
//  * the headline run admits exactly the configured session count and
//    completes (events > 0, every sector audited);
//  * the diurnal run elides sectors (> 0) and its results match the
//    elision-off run exactly.
//
// Always writes a machine-readable JSON summary; path defaults to
// BENCH_scale.json, overridden by argv[1] or EONA_BENCH_OUT.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>

#include "eona/json.hpp"
#include "scenarios/lab.hpp"
#include "scenarios/scale.hpp"

using namespace eona;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

long long peak_rss_bytes() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<long long>(usage.ru_maxrss) * 1024;
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? static_cast<std::size_t>(std::stoull(value))
                          : fallback;
}

bool env_flag(const char* name, bool fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  return !(std::strcmp(value, "0") == 0 || std::strcmp(value, "false") == 0);
}

/// Small identity config: enough sectors and barrier rounds to exercise the
/// coordinator, small enough to run 15 times in seconds.
std::map<std::string, std::string> identity_overrides(std::uint64_t seed,
                                                      std::size_t threads) {
  return {{"seed", std::to_string(seed)},
          {"threads", std::to_string(threads)},
          {"sessions", "2000"},
          {"sectors", "32"},
          {"run_duration", "300"},
          {"video_duration", "60"},
          {"barrier_period", "20"}};
}

/// Identity config with the arrival window closed at 180 s of a 420 s run,
/// so the tail rounds have quiescent sectors to elide (or not).
std::map<std::string, std::string> quiet_tail_overrides(std::uint64_t seed,
                                                        std::size_t threads,
                                                        bool elide) {
  auto ov = identity_overrides(seed, threads);
  ov["run_duration"] = "420";
  ov["arrival_window"] = "180";
  if (!elide) ov["elide"] = "false";
  return ov;
}

scenarios::ScaleConfig headline_config(std::size_t sessions,
                                       std::size_t sectors,
                                       std::size_t threads) {
  scenarios::ScaleConfig config;
  config.seed = 42;
  config.sessions = sessions;
  config.sectors = sectors;
  config.threads = threads;
  return config;  // defaults: 600 s run, 120 s videos, 30 s barriers
}

/// E18 off-peak profile: 900 s run, arrivals confined to the first 480 s,
/// diurnal with a dead-of-night trough (night rate 0) so whole sectors
/// drain and stay idle for many barrier rounds.
scenarios::ScaleConfig diurnal_config(std::size_t sessions,
                                      std::size_t sectors,
                                      std::size_t threads) {
  scenarios::ScaleConfig config;
  config.seed = 42;
  config.sessions = sessions;
  config.sectors = sectors;
  config.threads = threads;
  config.run_duration = 900.0;
  config.video_duration = 60.0;
  config.barrier_period = 30.0;
  config.arrival_window = 480.0;
  config.diurnal = true;
  config.diurnal_night_frac = 0.0;
  return config;
}

core::JsonValue perf_json(const scenarios::RunPerf& perf) {
  core::JsonValue out = core::JsonValue::object();
  out.set("barrier_rounds",
          core::JsonValue::number(static_cast<double>(perf.barrier_rounds)));
  out.set("sectors_dispatched",
          core::JsonValue::number(
              static_cast<double>(perf.sectors_dispatched)));
  out.set("sectors_elided",
          core::JsonValue::number(static_cast<double>(perf.sectors_elided)));
  out.set("parallel_advance_seconds",
          core::JsonValue::number(
              static_cast<double>(perf.parallel_advance_ns) / 1e9));
  out.set("serial_barrier_seconds",
          core::JsonValue::number(
              static_cast<double>(perf.serial_barrier_ns) / 1e9));
  out.set("serial_fraction", core::JsonValue::number(perf.serial_fraction()));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_scale.json";
  if (const char* env = std::getenv("EONA_BENCH_OUT")) out_path = env;
  if (argc > 1) out_path = argv[1];

  unsigned hw = std::thread::hardware_concurrency();
  std::size_t threads = env_size("EONA_SCALE_THREADS", hw == 0 ? 1 : hw);
  std::size_t sessions = env_size("EONA_SCALE_SESSIONS", 1'000'000);
  // Sector sizing: ~250 sessions per cell keeps the per-event dirty
  // component (concurrent flows on the cell's access link) around 60.
  std::size_t sectors =
      env_size("EONA_SCALE_SECTORS", std::max<std::size_t>(1, sessions / 250));
  bool elide = env_flag("EONA_SCALE_ELIDE", true);
  std::size_t diurnal_sessions =
      env_size("EONA_SCALE_DIURNAL_SESSIONS", 250'000);
  std::size_t diurnal_sectors = std::max<std::size_t>(
      1, env_size("EONA_SCALE_DIURNAL_SECTORS", diurnal_sessions / 250));

  std::printf("=== E17 / Sec 5: million-session sector-parallel worlds ===\n");
  std::printf("sessions=%zu sectors=%zu threads=%zu elide=%s\n\n", sessions,
              sectors, threads, elide ? "on" : "off");

  // --- part 1: serial vs parallel byte-identity, seeds 1..5 ---------------
  std::printf("--- equivalence: serial vs sector-parallel, seeds 1..5 ---\n");
  core::JsonValue identity_rows = core::JsonValue::array();
  bool all_identical = true;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    std::string serial =
        scenarios::run_scenario_json("scale", identity_overrides(seed, 1))
            .dump(2);
    bool ok = true;
    for (std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
      std::string parallel =
          scenarios::run_scenario_json("scale",
                                       identity_overrides(seed, workers))
              .dump(2);
      ok = ok && parallel == serial;
    }
    all_identical = all_identical && ok;
    std::printf("seed %llu: %s\n", static_cast<unsigned long long>(seed),
                ok ? "byte-identical" : "DIVERGED");
    core::JsonValue row = core::JsonValue::object();
    row.set("seed", core::JsonValue::number(static_cast<double>(seed)));
    row.set("byte_identical", core::JsonValue::boolean(ok));
    identity_rows.push_back(std::move(row));
  }

  // --- part 2: elision on vs off byte-identity, seeds 1..5 ----------------
  std::printf("\n--- equivalence: elision on vs off, quiet tail, seeds 1..5"
              " ---\n");
  core::JsonValue elision_rows = core::JsonValue::array();
  bool elision_identical = true;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    std::string with =
        scenarios::run_scenario_json("scale",
                                     quiet_tail_overrides(seed, 2, true))
            .dump(2);
    std::string without =
        scenarios::run_scenario_json("scale",
                                     quiet_tail_overrides(seed, 2, false))
            .dump(2);
    bool ok = with == without;
    elision_identical = elision_identical && ok;
    std::printf("seed %llu: %s\n", static_cast<unsigned long long>(seed),
                ok ? "byte-identical" : "DIVERGED");
    core::JsonValue row = core::JsonValue::object();
    row.set("seed", core::JsonValue::number(static_cast<double>(seed)));
    row.set("byte_identical", core::JsonValue::boolean(ok));
    elision_rows.push_back(std::move(row));
  }

  std::printf("\n--- reproducibility: seed 3, threads=2, twice ---\n");
  std::string once =
      scenarios::run_scenario_json("scale", identity_overrides(3, 2)).dump(2);
  std::string twice =
      scenarios::run_scenario_json("scale", identity_overrides(3, 2)).dump(2);
  bool reproducible = once == twice;
  std::printf("%s\n", reproducible ? "bit-identical" : "DIVERGED");

  // --- part 3: speedup on a mid-size config -------------------------------
  std::printf("\n--- speedup: %zu sessions, threads 1 vs %zu ---\n",
              std::min<std::size_t>(sessions, 20'000), threads);
  scenarios::ScaleConfig mid = headline_config(
      std::min<std::size_t>(sessions, 20'000),
      std::max<std::size_t>(1, std::min<std::size_t>(sessions, 20'000) / 250),
      1);
  auto t0 = std::chrono::steady_clock::now();
  scenarios::ScaleResult serial_mid = scenarios::run_scale(mid);
  double serial_wall = seconds_since(t0);
  mid.threads = threads;
  t0 = std::chrono::steady_clock::now();
  scenarios::ScaleResult parallel_mid = scenarios::run_scale(mid);
  double parallel_wall = seconds_since(t0);
  double speedup = parallel_wall > 0.0 ? serial_wall / parallel_wall : 0.0;
  bool mid_equivalent =
      serial_mid.events == parallel_mid.events &&
      serial_mid.qoe.mean_engagement == parallel_mid.qoe.mean_engagement &&
      serial_mid.reallocations == parallel_mid.reallocations;
  std::printf("serial   %7.2f s\nparallel %7.2f s   speedup %.2fx (%s)\n",
              serial_wall, parallel_wall, speedup,
              mid_equivalent ? "outputs match" : "OUTPUTS DIVERGED");

  // --- part 4: the headline run -------------------------------------------
  std::printf("\n--- headline: %zu sessions over %zu sectors (flat) ---\n",
              sessions, sectors);
  long long rss_before = peak_rss_bytes();
  scenarios::ScaleConfig big = headline_config(sessions, sectors, threads);
  big.elide_quiescent = elide;
  scenarios::RunPerf head_perf;
  big.perf = &head_perf;
  t0 = std::chrono::steady_clock::now();
  scenarios::ScaleResult r = scenarios::run_scale(big);
  double big_wall = seconds_since(t0);
  long long rss_after = peak_rss_bytes();
  double events_per_sec =
      big_wall > 0.0 ? static_cast<double>(r.events) / big_wall : 0.0;
  double bytes_per_session =
      static_cast<double>(rss_after - rss_before) /
      static_cast<double>(sessions);
  bool exact = r.arrivals == sessions && r.qoe.sessions == sessions;
  bool completed = r.events > 0 && r.barrier_rounds > 0;
  std::printf("wall          %9.1f s\n", big_wall);
  std::printf("events        %9llu   (%.0f events/s)\n",
              static_cast<unsigned long long>(r.events), events_per_sec);
  std::printf("admitted      %9llu   (exact: %s)\n",
              static_cast<unsigned long long>(r.arrivals),
              exact ? "yes" : "NO");
  std::printf("peak conc.    %9zu sessions\n", r.peak_concurrent);
  std::printf("reallocations %9llu headroom grants\n",
              static_cast<unsigned long long>(r.reallocations));
  std::printf("dispatched    %9llu sector-rounds (%llu elided)\n",
              static_cast<unsigned long long>(r.sectors_dispatched),
              static_cast<unsigned long long>(r.sectors_elided));
  std::printf("phases        %9.1f s parallel advance, %.1f s serial barrier"
              " (serial fraction %.4f)\n",
              static_cast<double>(head_perf.parallel_advance_ns) / 1e9,
              static_cast<double>(head_perf.serial_barrier_ns) / 1e9,
              head_perf.serial_fraction());
  std::printf("memory        %9.0f bytes/session (peak RSS delta %lld MB)\n",
              bytes_per_session, (rss_after - rss_before) / (1024 * 1024));

  // --- part 5: off-peak diurnal, elision off vs on (E18) ------------------
  // Each mode is timed EONA_SCALE_DIURNAL_REPEATS times (alternating, so
  // slow host phases hit both modes) and the minimum wall is reported: the
  // simulated work per repeat is deterministic and identical, so min is
  // the right estimator of true cost on a noisy shared host.
  std::size_t repeats =
      std::max<std::size_t>(1, env_size("EONA_SCALE_DIURNAL_REPEATS", 3));
  std::printf("\n--- diurnal off-peak: %zu sessions over %zu sectors"
              " (min of %zu) ---\n",
              diurnal_sessions, diurnal_sectors, repeats);
  scenarios::ScaleConfig night =
      diurnal_config(diurnal_sessions, diurnal_sectors, threads);
  scenarios::ScaleResult night_off, night_on;
  scenarios::RunPerf night_off_perf, night_on_perf;
  double night_off_wall = 0.0, night_on_wall = 0.0;
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    night.elide_quiescent = false;
    scenarios::RunPerf off_perf;
    night.perf = &off_perf;
    t0 = std::chrono::steady_clock::now();
    scenarios::ScaleResult off_result = scenarios::run_scale(night);
    double off_wall = seconds_since(t0);
    if (rep == 0 || off_wall < night_off_wall) {
      night_off_wall = off_wall;
      night_off_perf = off_perf;
      night_off = std::move(off_result);
    }
    night.elide_quiescent = true;
    scenarios::RunPerf on_perf;
    night.perf = &on_perf;
    t0 = std::chrono::steady_clock::now();
    scenarios::ScaleResult on_result = scenarios::run_scale(night);
    double on_wall = seconds_since(t0);
    if (rep == 0 || on_wall < night_on_wall) {
      night_on_wall = on_wall;
      night_on_perf = on_perf;
      night_on = std::move(on_result);
    }
  }
  double night_off_eps = night_off_wall > 0.0
                             ? static_cast<double>(night_off.events) /
                                   night_off_wall
                             : 0.0;
  double night_on_eps = night_on_wall > 0.0
                            ? static_cast<double>(night_on.events) /
                                  night_on_wall
                            : 0.0;
  double night_ratio =
      night_on_wall > 0.0 ? night_off_wall / night_on_wall : 0.0;
  bool diurnal_elides = night_on.sectors_elided > 0;
  bool diurnal_match =
      night_on.events == night_off.events &&
      night_on.arrivals == night_off.arrivals &&
      night_on.reallocations == night_off.reallocations &&
      night_on.qoe.mean_engagement == night_off.qoe.mean_engagement &&
      night_on.qoe.mean_buffering == night_off.qoe.mean_buffering;
  std::printf("elide off  %7.2f s   %9.0f events/s   serial fraction %.4f\n",
              night_off_wall, night_off_eps, night_off_perf.serial_fraction());
  std::printf("elide on   %7.2f s   %9.0f events/s   serial fraction %.4f\n",
              night_on_wall, night_on_eps, night_on_perf.serial_fraction());
  std::printf("elided     %llu of %llu sector-rounds   wall ratio %.2fx"
              " (%s)\n",
              static_cast<unsigned long long>(night_on.sectors_elided),
              static_cast<unsigned long long>(night_on.sectors_elided +
                                              night_on.sectors_dispatched),
              night_ratio, diurnal_match ? "results match" : "DIVERGED");

  bool pass = all_identical && elision_identical && reproducible &&
              mid_equivalent && exact && completed && diurnal_elides &&
              diurnal_match;
  std::printf("\n%s\n", pass ? "PASS" : "FAIL");

  core::JsonValue doc = core::JsonValue::object();
  doc.set("bench", core::JsonValue::string("scale"));
  core::JsonValue cfg = core::JsonValue::object();
  cfg.set("sessions", core::JsonValue::number(static_cast<double>(sessions)));
  cfg.set("sectors", core::JsonValue::number(static_cast<double>(sectors)));
  cfg.set("threads", core::JsonValue::number(static_cast<double>(threads)));
  cfg.set("elide", core::JsonValue::boolean(elide));
  doc.set("config", std::move(cfg));
  doc.set("identity", std::move(identity_rows));
  doc.set("elision_identity", std::move(elision_rows));
  core::JsonValue sp = core::JsonValue::object();
  sp.set("serial_wall_seconds", core::JsonValue::number(serial_wall));
  sp.set("parallel_wall_seconds", core::JsonValue::number(parallel_wall));
  sp.set("speedup", core::JsonValue::number(speedup));
  doc.set("speedup", std::move(sp));
  core::JsonValue head = core::JsonValue::object();
  head.set("wall_seconds", core::JsonValue::number(big_wall));
  head.set("events", core::JsonValue::number(static_cast<double>(r.events)));
  head.set("events_per_sec", core::JsonValue::number(events_per_sec));
  head.set("arrivals",
           core::JsonValue::number(static_cast<double>(r.arrivals)));
  head.set("peak_concurrent",
           core::JsonValue::number(static_cast<double>(r.peak_concurrent)));
  head.set("reallocations",
           core::JsonValue::number(static_cast<double>(r.reallocations)));
  head.set("barrier_rounds",
           core::JsonValue::number(static_cast<double>(r.barrier_rounds)));
  head.set("bytes_per_session", core::JsonValue::number(bytes_per_session));
  head.set("peak_rss_bytes",
           core::JsonValue::number(static_cast<double>(rss_after)));
  head.set("mean_engagement",
           core::JsonValue::number(r.qoe.mean_engagement));
  head.set("mean_buffering", core::JsonValue::number(r.qoe.mean_buffering));
  head.set("perf", perf_json(head_perf));
  doc.set("headline", std::move(head));
  core::JsonValue diurnal = core::JsonValue::object();
  core::JsonValue dcfg = core::JsonValue::object();
  dcfg.set("sessions",
           core::JsonValue::number(static_cast<double>(diurnal_sessions)));
  dcfg.set("sectors",
           core::JsonValue::number(static_cast<double>(diurnal_sectors)));
  dcfg.set("threads", core::JsonValue::number(static_cast<double>(threads)));
  diurnal.set("config", std::move(dcfg));
  core::JsonValue doff = core::JsonValue::object();
  doff.set("wall_seconds", core::JsonValue::number(night_off_wall));
  doff.set("events_per_sec", core::JsonValue::number(night_off_eps));
  doff.set("perf", perf_json(night_off_perf));
  diurnal.set("elide_off", std::move(doff));
  core::JsonValue don = core::JsonValue::object();
  don.set("wall_seconds", core::JsonValue::number(night_on_wall));
  don.set("events_per_sec", core::JsonValue::number(night_on_eps));
  don.set("perf", perf_json(night_on_perf));
  diurnal.set("elide_on", std::move(don));
  diurnal.set("wall_ratio", core::JsonValue::number(night_ratio));
  doc.set("diurnal", std::move(diurnal));
  core::JsonValue verdicts = core::JsonValue::object();
  verdicts.set("parallel_byte_identical",
               core::JsonValue::boolean(all_identical));
  verdicts.set("elision_byte_identical",
               core::JsonValue::boolean(elision_identical));
  verdicts.set("reproducible", core::JsonValue::boolean(reproducible));
  verdicts.set("speedup_outputs_match",
               core::JsonValue::boolean(mid_equivalent));
  verdicts.set("exact_admission", core::JsonValue::boolean(exact));
  verdicts.set("completed", core::JsonValue::boolean(completed));
  verdicts.set("diurnal_elides", core::JsonValue::boolean(diurnal_elides));
  verdicts.set("diurnal_outputs_match",
               core::JsonValue::boolean(diurnal_match));
  doc.set("verdicts", std::move(verdicts));

  std::string text = doc.dump(2);
  std::ofstream out(out_path, std::ios::binary);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out << "\n";
  std::printf("wrote %s\n", out_path.c_str());
  return pass ? 0 : 1;
}
