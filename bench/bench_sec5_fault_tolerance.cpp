// E13 (§5 graceful degradation): what happens to QoE when the EONA control
// plane itself fails -- reports dropped, duplicated, jittered, or the
// looking glass down for minutes mid-incident?
//
// Expected shape: with query-side robustness (bounded retry + last-known-good
// fallback + stale-aware dampening) the EONA advantage decays *smoothly*
// with the fault rate and outage length; a naive consumer that trusts only
// the current tick's fetch falls off a cliff back to (or below) baseline
// behaviour the moment the channel misbehaves, because every missed fetch
// blinds the brain mid-crowd.
//
// Run 1: drop-rate sweep under the standard fault profile (10% duplicates,
//        2 s jitter, one 150 s outage in the middle of the flash crowd).
// Run 2: outage-length sweep at 20% drop.
// Run 3: same-seed reproducibility check (fault injection must not perturb
//        determinism).
//
// Prints PASS/FAIL verdicts for the acceptance thresholds:
//  * robust QoE at 20% drop within 15% of the zero-fault EONA reference;
//  * naive QoE at 20% drop at least 40% below that reference;
//  * two identical runs produce bit-identical QoE and health counters.
#include <cmath>
#include <cstdio>

#include "scenarios/flashcrowd.hpp"

using namespace eona;
using scenarios::ControlMode;

namespace {

/// The standard fault profile of the sweep: `drop` loss, 10% duplication,
/// 2 s delivery jitter, and a 150 s outage while the crowd is at its worst.
core::FaultProfile standard_profile(double drop, Duration outage_len = 150.0,
                                    TimePoint outage_start = 210.0) {
  core::FaultProfile fault;
  fault.drop_rate = drop;
  fault.duplicate_rate = 0.10;
  fault.max_extra_delay = 2.0;
  if (outage_len > 0.0)
    fault.outages.push_back({outage_start, outage_start + outage_len});
  return fault;
}

scenarios::FlashCrowdConfig base_config(bool robust) {
  scenarios::FlashCrowdConfig config;
  config.mode = ControlMode::kEona;
  // A crowd heavy enough that the bottleneck only survives if the informed
  // aggregate steps down (the Fig 3 mechanism): with I2A flowing, the EONA
  // brain caps bitrates and the access link drains; blind players probe up,
  // stall, and thrash CDNs. This makes the value of the interface -- and
  // hence the cost of losing it -- large enough to measure cleanly.
  config.crowd_flows = 250;
  config.crowd_background_fraction = 0.95;
  config.robust_fetch = robust;
  if (robust) {
    config.retry.max_retries = 3;
    config.retry.base_backoff = 0.5;
    config.retry.freshness_deadline = 30.0;
    config.stale_widening = 2.0;
  }
  return config;
}

scenarios::FlashCrowdResult run(double drop, bool robust,
                                Duration outage_len = 150.0) {
  scenarios::FlashCrowdConfig config = base_config(robust);
  config.i2a_fault = standard_profile(drop, outage_len);
  config.a2i_fault = standard_profile(drop, outage_len);
  return scenarios::run_flash_crowd(config);
}

double qoe_of(const scenarios::FlashCrowdResult& r) {
  return r.crowd_qoe.mean_engagement;
}

void print_row(const char* label, const scenarios::FlashCrowdResult& r,
               double reference) {
  std::printf("%10s | %8.3f %7.1f%% | %7.3f %8llu %8.2f | %6llu %6llu %6llu\n",
              label, qoe_of(r),
              reference > 0.0 ? 100.0 * qoe_of(r) / reference : 0.0,
              r.qoe.mean_engagement,
              static_cast<unsigned long long>(r.qoe.cdn_switches),
              r.peak_stalled_fraction,
              static_cast<unsigned long long>(r.i2a_health.drops),
              static_cast<unsigned long long>(r.i2a_health.retries),
              static_cast<unsigned long long>(r.i2a_health.stale_serves));
}

bool health_equal(const telemetry::DeliveryHealthSnapshot& a,
                  const telemetry::DeliveryHealthSnapshot& b) {
  return a == b;
}

}  // namespace

int main() {
  std::printf("=== E13 / Sec 5: fault tolerance of the EONA control plane ===\n\n");

  // Zero-fault EONA reference: the value robustness must preserve.
  scenarios::FlashCrowdResult reference =
      scenarios::run_flash_crowd(base_config(/*robust=*/true));
  scenarios::FlashCrowdResult baseline = [] {
    scenarios::FlashCrowdConfig config = base_config(/*robust=*/false);
    config.mode = ControlMode::kBaseline;
    return scenarios::run_flash_crowd(config);
  }();
  const double ref_qoe = qoe_of(reference);
  std::printf("zero-fault eona reference: crowd-engage=%.3f | "
              "no-eona baseline: crowd-engage=%.3f\n\n",
              ref_qoe, qoe_of(baseline));

  std::printf("--- drop-rate sweep (dup 10%%, jitter 2 s, 150 s outage) ---\n");
  std::printf("%10s | %8s %8s | %7s %8s %8s | %6s %6s %6s\n", "drop", "crowd-q",
              "vs-ref", "engage", "cdn-sw", "peak", "drops", "retry", "stale");
  scenarios::FlashCrowdResult robust_at_20, naive_at_20;
  for (double drop : {0.0, 0.05, 0.10, 0.20, 0.30, 0.40}) {
    scenarios::FlashCrowdResult robust = run(drop, /*robust=*/true);
    scenarios::FlashCrowdResult naive = run(drop, /*robust=*/false);
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f%% rob", 100.0 * drop);
    print_row(label, robust, ref_qoe);
    std::snprintf(label, sizeof(label), "%.0f%% naive", 100.0 * drop);
    print_row(label, naive, ref_qoe);
    if (drop == 0.20) {
      robust_at_20 = robust;
      naive_at_20 = naive;
    }
  }

  std::printf("\n--- outage-length sweep at 20%% drop ---\n");
  std::printf("%10s | %8s %8s | %7s %8s %8s | %6s %6s %6s\n", "outage",
              "crowd-q", "vs-ref", "engage", "cdn-sw", "peak", "drops", "retry",
              "stale");
  for (Duration len : {0.0, 30.0, 60.0, 120.0, 240.0}) {
    scenarios::FlashCrowdResult robust = run(0.20, /*robust=*/true, len);
    scenarios::FlashCrowdResult naive = run(0.20, /*robust=*/false, len);
    char label[32];
    std::snprintf(label, sizeof(label), "%.0fs rob", len);
    print_row(label, robust, ref_qoe);
    std::snprintf(label, sizeof(label), "%.0fs naive", len);
    print_row(label, naive, ref_qoe);
  }

  std::printf("\n--- reproducibility: 20%% drop, robust, same seed twice ---\n");
  scenarios::FlashCrowdResult again = run(0.20, /*robust=*/true);
  bool reproducible =
      qoe_of(again) == qoe_of(robust_at_20) &&
      again.qoe.mean_engagement == robust_at_20.qoe.mean_engagement &&
      again.qoe.stalls == robust_at_20.qoe.stalls &&
      again.peak_stalled_fraction == robust_at_20.peak_stalled_fraction &&
      health_equal(again.i2a_health, robust_at_20.i2a_health) &&
      health_equal(again.a2i_health, robust_at_20.a2i_health);
  std::printf("run1 crowd-engage=%.6f stalls=%llu drops=%llu | "
              "run2 crowd-engage=%.6f stalls=%llu drops=%llu\n",
              qoe_of(robust_at_20),
              static_cast<unsigned long long>(robust_at_20.qoe.stalls),
              static_cast<unsigned long long>(robust_at_20.i2a_health.drops),
              qoe_of(again), static_cast<unsigned long long>(again.qoe.stalls),
              static_cast<unsigned long long>(again.i2a_health.drops));

  std::printf("\n--- verdicts ---\n");
  double robust_ratio = qoe_of(robust_at_20) / ref_qoe;
  double naive_ratio = qoe_of(naive_at_20) / ref_qoe;
  bool robust_holds = robust_ratio >= 0.85;
  bool naive_cliffs = naive_ratio <= 0.60;
  std::printf("robust @20%% drop keeps %.1f%% of reference (need >= 85%%): %s\n",
              100.0 * robust_ratio, robust_holds ? "PASS" : "FAIL");
  std::printf("naive  @20%% drop keeps %.1f%% of reference (need <= 60%%): %s\n",
              100.0 * naive_ratio, naive_cliffs ? "PASS" : "FAIL");
  std::printf("same seed reproduces identical numbers: %s\n",
              reproducible ? "PASS" : "FAIL");
  return (robust_holds && naive_cliffs && reproducible) ? 0 : 1;
}
