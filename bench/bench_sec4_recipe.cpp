// E7 (§4): the interface-design recipe, executed end to end.
//
// Paper recipe: enumerate use cases; imagine a global controller; map knobs
// and data to owners (cross-owner couplings are the candidate shared
// fields); then narrow -- find the minimal subset of shared fields whose
// quality stays close to the global controller.
//
// Here the candidate fields are the five EONA report sections. Quality of a
// subset = mean engagement over the two §2 use cases (flash crowd + peering
// oscillation) with the export policies restricted to that subset. The
// oracle (omniscient player brain + fully-informed control planes) is the
// reference global controller -- one concrete instantiation, so the narrow
// interface can match or even edge past it.
// Expected shape: a small subset (traffic forecasts + peering status +
// congestion attribution) recovers almost all of the oracle gap -- the
// paper's "narrow yet expressive" interface exists.
#include <cstdio>

#include "eona/recipe.hpp"
#include "scenarios/flashcrowd.hpp"
#include "scenarios/oscillation.hpp"

using namespace eona;
using scenarios::ControlMode;

namespace {

const char* kFieldNames[5] = {
    "A2I.qoe_groups", "A2I.traffic_forecasts", "I2A.peering_status",
    "I2A.server_hints", "I2A.congestion",
};

core::A2IPolicy a2i_policy(const std::vector<bool>& enabled) {
  core::A2IPolicy policy;
  policy.share_qoe_groups = enabled[0];
  policy.share_server_level_qoe = enabled[0];
  policy.share_traffic_forecasts = enabled[1];
  policy.k_anonymity = 1;
  return policy;
}

core::I2APolicy i2a_policy(const std::vector<bool>& enabled) {
  core::I2APolicy policy;
  policy.share_peering_status = enabled[2];
  policy.share_peering_capacity = enabled[2];
  policy.share_server_hints = enabled[3];
  policy.share_congestion = enabled[4];
  return policy;
}

double quality(const std::vector<bool>& enabled, ControlMode mode) {
  scenarios::OscillationConfig osc;
  osc.mode = mode;
  osc.run_duration = 900.0;
  osc.a2i_policy = a2i_policy(enabled);
  osc.i2a_policy = i2a_policy(enabled);
  double q_osc = scenarios::run_oscillation(osc).qoe.mean_engagement;

  scenarios::FlashCrowdConfig fc;
  fc.mode = mode;
  fc.a2i_policy = osc.a2i_policy;
  fc.i2a_policy = osc.i2a_policy;
  double q_fc = scenarios::run_flash_crowd(fc).qoe.mean_engagement;
  return 0.5 * (q_osc + q_fc);
}

}  // namespace

int main() {
  std::printf("=== E7 / Sec 4: narrowing the interface against the global "
              "controller ===\n\n");

  // Steps 1-3 of the recipe: the knob/data inventory of the two use cases,
  // with cross-owner couplings marking what must be shared.
  core::InterfaceInventory inventory;
  inventory.knobs = {
      {"cdn_choice", core::Owner::kAppP},
      {"bitrate", core::Owner::kAppP},
      {"server_choice", core::Owner::kAppP},
      {"peering_selection", core::Owner::kInfP},
      {"server_power", core::Owner::kInfP},
  };
  inventory.data = {
      {"session_qoe", core::Owner::kAppP},        // 0
      {"traffic_intent", core::Owner::kAppP},     // 1
      {"peering_state", core::Owner::kInfP},      // 2
      {"server_load", core::Owner::kInfP},        // 3
      {"congestion_location", core::Owner::kInfP},// 4
  };
  inventory.couplings = {
      {3, 1},  // peering_selection needs traffic_intent     -> share
      {4, 0},  // server_power needs session_qoe             -> share
      {0, 2},  // cdn_choice needs peering_state             -> share
      {2, 3},  // server_choice needs server_load            -> share
      {1, 4},  // bitrate needs congestion_location          -> share
      {1, 0},  // bitrate needs session_qoe (same owner)     -> local
  };
  std::printf("wide interface (cross-owner fields): ");
  for (std::size_t f : inventory.shared_fields()) std::printf("%zu ", f);
  std::printf(" (of %zu data attributes)\n\n", inventory.data.size());

  double oracle = quality(std::vector<bool>(5, true), ControlMode::kOracle);
  double all_shared = quality(std::vector<bool>(5, true), ControlMode::kEona);
  std::printf("reference global controller (oracle)     : %.4f\n", oracle);
  std::printf("everything shared (wide interface)       : %.4f\n\n",
              all_shared);

  // Step 4: greedy narrowing.
  core::NarrowingResult result = core::narrow_interface(
      5, [](const std::vector<bool>& enabled) {
        return quality(enabled, ControlMode::kEona);
      });

  std::printf("%-28s %10s %12s\n", "field added (greedy order)", "quality",
              "vs oracle");
  std::printf("%-28s %10.4f %11.1f%%\n", "(nothing shared)",
              result.baseline_quality,
              100.0 * result.baseline_quality / oracle);
  for (const auto& step : result.steps) {
    std::printf("%-28s %10.4f %11.1f%%\n", kFieldNames[step.field],
                step.quality, 100.0 * step.quality / oracle);
  }
  std::printf("\nminimal width within 1%% of the best: %zu of 5 fields\n",
              result.minimal_width(0.01 * oracle));
  return 0;
}
