// E20 (§5 broker survivability): the exchange itself crashes mid-run.
//
// The E19 federation plane (two access ISPs x three AppP tenants dividing a
// per-ISP egress pool by A2I forecasts, tenant 0 over-reporting 6x against
// a broker quota) -- but a chaos plan kills the exchange at t=180 and
// restarts it at t=300. A fourth tenant churns in after the restart and
// tenant 2 unwires from one ISP, so the quota denominators move mid-run.
//
// Sweep: seeds x {EONA degraded mode, block-on-broker baseline}. Degraded
// mode keeps last-known-good A2I/I2A data through the outage and re-registers
// on a seeded jittered backoff; the baseline clears its view on every missed
// fetch, collapsing every ISP to an equal egress split that cannot carry the
// heavy tenant's viewers even at the bottom ladder rung.
//
// Verdicts (acceptance thresholds):
//  * per seed, degraded-mode rebuffer-seconds strictly below the baseline;
//  * per seed and arm, every tenant reattaches within the backoff horizon
//    (ReattachPolicy::horizon()) of the restart;
//  * E19 containment holds across the outage in both arms: quota clamps
//    fire and the liar's post-restart share stays near its 0.2 quota,
//    well under the claimed share;
//  * the broker-invariant auditor ran (a violation aborts the run, so a
//    completed run with exchange_checks > 0 means zero violations);
//  * same seed + arm reproduces bit-identical numbers.
//
// Always writes a machine-readable JSON summary (per-run rows incl. the
// clamp / rate-limit / epoch-fence counters, verdicts) for the CI bench
// artifact; path defaults to BENCH_broker_outage.json, overridden by
// argv[1] or EONA_BENCH_OUT. CI runs a session-reduced sweep via
// EONA_BROKER_OUTAGE_TIME_SCALE / EONA_BROKER_OUTAGE_HEAVY_RATE.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "eona/json.hpp"
#include "scenarios/broker_outage.hpp"

using namespace eona;

namespace {

constexpr std::uint64_t kSeeds[] = {1, 2, 3, 4, 5};

double env_or(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : fallback;
}

scenarios::BrokerOutageResult run(std::uint64_t seed, bool degraded) {
  scenarios::BrokerOutageConfig config;
  config.seed = seed;
  config.degraded = degraded;
  // CI shrinks the whole timeline (outage window, churn, drain) by one
  // factor so the session-reduced run keeps the same phase structure.
  double scale = env_or("EONA_BROKER_OUTAGE_TIME_SCALE", 1.0);
  config.run_duration *= scale;
  config.video_duration *= scale;
  config.crash_at *= scale;
  config.restart_at *= scale;
  config.churn_join_at *= scale;
  config.churn_leave_at *= scale;
  config.heavy_arrival_rate =
      env_or("EONA_BROKER_OUTAGE_HEAVY_RATE", config.heavy_arrival_rate);
  return scenarios::run_broker_outage(config);
}

void print_row(const char* arm, std::uint64_t seed,
               const scenarios::BrokerOutageResult& r) {
  std::printf("%9s %4llu | %8.1f | %6.2f/%-5.2f | %5llu %5llu | %6.3f %5llu "
              "%5llu %5llu\n",
              arm, static_cast<unsigned long long>(seed), r.rebuffer_seconds,
              r.time_to_reattach, r.reattach_horizon,
              static_cast<unsigned long long>(r.reattaches),
              static_cast<unsigned long long>(r.reattach_attempts),
              r.liar_share, static_cast<unsigned long long>(r.clamps),
              static_cast<unsigned long long>(r.epoch_rejected),
              static_cast<unsigned long long>(r.rate_limited));
}

core::JsonValue row_json(std::uint64_t seed, bool degraded,
                         const scenarios::BrokerOutageResult& r) {
  core::JsonValue row = core::JsonValue::object();
  row.set("seed", core::JsonValue::number(static_cast<double>(seed)));
  row.set("degraded", core::JsonValue::boolean(degraded));
  row.set("rebuffer_seconds", core::JsonValue::number(r.rebuffer_seconds));
  row.set("heavy_engagement", core::JsonValue::number(r.heavy.mean_engagement));
  row.set("heavy_bitrate", core::JsonValue::number(r.heavy.mean_bitrate));
  row.set("joiner_sessions",
          core::JsonValue::number(static_cast<double>(r.joiner.sessions)));
  row.set("time_to_reattach", core::JsonValue::number(r.time_to_reattach));
  row.set("reattach_horizon", core::JsonValue::number(r.reattach_horizon));
  row.set("reattaches",
          core::JsonValue::number(static_cast<double>(r.reattaches)));
  row.set("reattach_attempts",
          core::JsonValue::number(static_cast<double>(r.reattach_attempts)));
  row.set("detached_seconds", core::JsonValue::number(r.detached_seconds));
  row.set("liar_share", core::JsonValue::number(r.liar_share));
  row.set("clamps", core::JsonValue::number(static_cast<double>(r.clamps)));
  row.set("rate_limited",
          core::JsonValue::number(static_cast<double>(r.rate_limited)));
  row.set("epoch_rejected",
          core::JsonValue::number(static_cast<double>(r.epoch_rejected)));
  row.set("faults", core::JsonValue::number(static_cast<double>(r.faults)));
  row.set("exchange_checks",
          core::JsonValue::number(static_cast<double>(r.exchange_checks)));
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_broker_outage.json";
  if (const char* env = std::getenv("EONA_BENCH_OUT")) out_path = env;
  if (argc > 1) out_path = argv[1];

  std::printf("=== E20 / Sec 5: broker crash, degraded mode vs "
              "block-on-broker ===\n\n");
  std::printf("%9s %4s | %8s | %12s | %5s %5s | %6s %5s %5s %5s\n", "arm",
              "seed", "rebuf-s", "reatt/horiz", "reatt", "tries", "l-shr",
              "clamp", "epoch", "rate");

  core::JsonValue rows = core::JsonValue::array();
  std::vector<scenarios::BrokerOutageResult> degraded_runs;
  bool dip_below = true, reattach_in_horizon = true, contained = true;
  bool audited = true;
  // The liar's quota is 0.2; min-share floors and integer session counts
  // leave the realised share a hair above it. Anywhere under the equal
  // split (1/3) means the 6x claim bought nothing.
  constexpr double kLiarShareBound = 0.28;
  for (std::uint64_t seed : kSeeds) {
    scenarios::BrokerOutageResult naive = run(seed, false);
    scenarios::BrokerOutageResult degraded = run(seed, true);
    print_row("baseline", seed, naive);
    print_row("degraded", seed, degraded);
    rows.push_back(row_json(seed, false, naive));
    rows.push_back(row_json(seed, true, degraded));
    dip_below &= degraded.rebuffer_seconds < naive.rebuffer_seconds;
    for (const scenarios::BrokerOutageResult* r : {&naive, &degraded}) {
      reattach_in_horizon &= r->reattaches > 0 &&
                             r->time_to_reattach <= r->reattach_horizon;
      contained &= r->clamps > 0 && r->liar_share < kLiarShareBound;
      audited &= r->exchange_checks > 0 && r->faults >= 2;
    }
    degraded_runs.push_back(std::move(degraded));
  }

  std::printf("\n--- reproducibility: seed 1, degraded, same config twice "
              "---\n");
  scenarios::BrokerOutageResult again = run(kSeeds[0], true);
  const scenarios::BrokerOutageResult& first = degraded_runs.front();
  bool reproducible =
      again.rebuffer_seconds == first.rebuffer_seconds &&
      again.time_to_reattach == first.time_to_reattach &&
      again.heavy.mean_engagement == first.heavy.mean_engagement &&
      again.liar_share == first.liar_share &&
      again.epoch_rejected == first.epoch_rejected &&
      again.clamps == first.clamps;
  std::printf("run1 rebuf=%.1f epoch_rejected=%llu | run2 rebuf=%.1f "
              "epoch_rejected=%llu\n",
              first.rebuffer_seconds,
              static_cast<unsigned long long>(first.epoch_rejected),
              again.rebuffer_seconds,
              static_cast<unsigned long long>(again.epoch_rejected));

  std::printf("\n--- verdicts ---\n");
  std::printf("degraded rebuffer strictly below baseline every seed: %s\n",
              dip_below ? "PASS" : "FAIL");
  std::printf("every tenant reattaches within the backoff horizon: %s\n",
              reattach_in_horizon ? "PASS" : "FAIL");
  std::printf("containment holds across the outage (clamps, share): %s\n",
              contained ? "PASS" : "FAIL");
  std::printf("broker invariants audited, both fault actions fired: %s\n",
              audited ? "PASS" : "FAIL");
  std::printf("same seed reproduces identical numbers: %s\n",
              reproducible ? "PASS" : "FAIL");

  core::JsonValue doc = core::JsonValue::object();
  doc.set("experiment", core::JsonValue::string("E20_sec5_broker_outage"));
  doc.set("runs", std::move(rows));
  core::JsonValue verdicts = core::JsonValue::object();
  verdicts.set("rebuffer_dip_below_baseline",
               core::JsonValue::boolean(dip_below));
  verdicts.set("reattach_within_horizon",
               core::JsonValue::boolean(reattach_in_horizon));
  verdicts.set("containment_across_restart",
               core::JsonValue::boolean(contained));
  verdicts.set("broker_invariants_audited", core::JsonValue::boolean(audited));
  verdicts.set("reproducible", core::JsonValue::boolean(reproducible));
  doc.set("verdicts", std::move(verdicts));
  std::ofstream out(out_path, std::ios::binary);
  if (out) {
    std::string text = doc.dump(2);
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out << "\n";
    std::fprintf(stderr, "bench results written to %s\n", out_path.c_str());
  }

  return (dip_below && reattach_in_horizon && contained && audited &&
          reproducible)
             ? 0
             : 1;
}
