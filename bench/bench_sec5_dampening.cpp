// E10 (§5 "oscillations"): can dampening/backoff tame control instability?
//
// Paper claim: EONA's tighter coupling "might introduce new types of
// control stability issues... we speculate that some sort of dampening or
// backoff algorithms can help here". Two ablations:
//   (a) dwell-time dampening applied to the *baseline* loops: does slowing
//       the knobs stop the Fig 5 cycle (at what QoE price)?
//   (b) a deliberately stressed EONA world (stale reports + synchronised
//       fast loops -- the coupling §5 worries about) with and without
//       dampening.
#include <cstdio>

#include "scenarios/oscillation.hpp"

using namespace eona;
using scenarios::ControlMode;

namespace {

void print_row(const char* label, const scenarios::OscillationResult& r) {
  std::printf("%-26s %7zu %7zu %8zu %6s %5s %6s %10.4f %8.2fM\n", label,
              r.appp_switches, r.infp_switches,
              r.appp_reversals + r.infp_reversals, r.cycling ? "yes" : "no",
              r.converged ? "yes" : "no", r.green_path ? "yes" : "no",
              r.qoe.mean_buffering, r.qoe.mean_bitrate / 1e6);
}

}  // namespace

int main() {
  std::printf("=== E10 / Sec 5: dampening and backoff vs oscillation ===\n\n");
  std::printf("%-26s %7s %7s %8s %6s %5s %6s %10s %9s\n", "configuration",
              "app-sw", "isp-sw", "reversal", "cycle", "conv", "green",
              "buffering", "bitrate");

  std::printf("--- (a) dwell dampening on the baseline loops ---\n");
  for (Duration dwell : {0.0, 120.0, 300.0, 600.0}) {
    scenarios::OscillationConfig config;
    config.mode = ControlMode::kBaseline;
    config.appp_dwell = dwell;
    config.infp_dwell = dwell;
    char label[64];
    std::snprintf(label, sizeof(label), "baseline dwell=%.0fs", dwell);
    print_row(label, scenarios::run_oscillation(config));
  }

  std::printf("\n--- (b) stressed EONA: stale reports + synchronised fast "
              "loops ---\n");
  for (Duration dwell : {0.0, 120.0, 300.0}) {
    scenarios::OscillationConfig config;
    config.mode = ControlMode::kEona;
    config.appp_period = 30.0;  // synchronised, far faster than the paper's
    config.infp_period = 30.0;  // "tens of minutes" TE cadence
    config.a2i_delay = 60.0;    // both sides act on minute-old data
    config.i2a_delay = 60.0;
    config.appp_dwell = dwell;
    config.infp_dwell = dwell;
    char label[64];
    std::snprintf(label, sizeof(label), "eona sync+stale dwell=%.0fs", dwell);
    print_row(label, scenarios::run_oscillation(config));
  }

  std::printf("\n--- reference: healthy EONA (default cadences, fresh data) "
              "---\n");
  scenarios::OscillationConfig config;
  config.mode = ControlMode::kEona;
  print_row("eona default", scenarios::run_oscillation(config));
  return 0;
}
