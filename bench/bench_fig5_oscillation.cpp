// E4 (Fig 5): oscillation between independent AppP and InfP control loops.
//
// Paper claim: with independent loops, the AppP flips CDN X<->Y while the
// ISP flips X's ingress B<->C, an "(infinite) oscillating loop in both",
// and the uncongested green path (X via C) "will never be used". With the
// A2I traffic forecast and the I2A peering status, both loops settle on the
// green path at once. Expected shape: baseline cycles (cycle detector
// fires, reversals pile up); EONA converges with zero switches and strictly
// better QoE.
#include <cstdio>

#include "scenarios/oscillation.hpp"

using namespace eona;
using scenarios::ControlMode;

int main() {
  std::printf("=== E4 / Figure 5: dueling control loops at the peering edge "
              "===\n");
  scenarios::OscillationConfig base;
  std::printf("world: X@B=%.0fM (preferred) X@C=%.0fM Y@C=%.0fM; AppP period "
              "%.0fs, ISP period %.0fs; measure [%.0f, %.0f] s\n\n",
              base.capacity_b / 1e6, base.capacity_cx / 1e6,
              base.capacity_cy / 1e6, base.appp_period, base.infp_period,
              base.measure_from, base.run_duration - base.video_duration);

  std::printf("%-9s %5s %7s %7s %8s %8s %6s %5s %6s %10s %9s\n", "mode",
              "seed", "app-sw", "isp-sw", "app-rev", "isp-rev", "cycle",
              "conv", "green", "buffering", "bitrate");
  for (ControlMode mode :
       {ControlMode::kBaseline, ControlMode::kEona, ControlMode::kOracle}) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      scenarios::OscillationConfig config = base;
      config.mode = mode;
      config.seed = seed;
      scenarios::OscillationResult r = scenarios::run_oscillation(config);
      std::printf("%-9s %5llu %7zu %7zu %8zu %8zu %6s %5s %6s %10.4f %8.2fM\n",
                  scenarios::to_string(mode),
                  static_cast<unsigned long long>(seed), r.appp_switches,
                  r.infp_switches, r.appp_reversals, r.infp_reversals,
                  r.cycling ? "yes" : "no", r.converged ? "yes" : "no",
                  r.green_path ? "yes" : "no", r.qoe.mean_buffering,
                  r.qoe.mean_bitrate / 1e6);
    }
  }

  std::printf("\n--- baseline knob timelines (the cycle itself) ---\n");
  scenarios::OscillationConfig config = base;
  config.mode = ControlMode::kBaseline;
  scenarios::OscillationResult r = scenarios::run_oscillation(config);
  std::printf("%8s %12s %12s %10s\n", "t[s]", "primary-cdn", "X-egress",
              "bitrate");
  const auto& primary = r.metrics.series("primary_cdn");
  const auto& egress = r.metrics.series("x_egress");
  const auto& bitrate = r.metrics.series("mean_bitrate");
  for (const auto& s : primary.resample(0, base.run_duration, 120.0)) {
    std::printf("%8.0f %12s %12s %9.2fM\n", s.t,
                s.value == 0 ? "X" : "Y",
                egress.value_at(s.t) == 0 ? "B(local)" : "C(IXP)",
                bitrate.value_at(s.t) / 1e6);
  }
  return 0;
}
