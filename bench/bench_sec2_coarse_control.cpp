// E5 (§2 "coarse control"): a server inside CDN 1 degrades mid-run.
//
// Paper claim: without hints the player's only recourse is a whole-CDN
// switch, which "may disrupt experience, e.g. if the alternative CDN does
// not have the content in its cache yet"; with I2A server hints the player
// reconnects to a sibling server, "the CDN retains its share of revenue and
// by exploiting intra-CDN caching the application experiences less
// disruption". Expected shape: baseline switches CDNs (cold caches, origin
// detours, reconnect thrash); EONA switches servers inside CDN 1 and ends
// with better engagement.
#include <cstdio>

#include "scenarios/coarse_control.hpp"

using namespace eona;
using scenarios::ControlMode;

int main() {
  std::printf("=== E5 / Sec 2: coarse (CDN-level) vs fine (server-level) "
              "control ===\n");
  scenarios::CoarseControlConfig base;
  std::printf("world: CDN1 = 2 warm servers (A degrades to %.0f%% at "
              "t=%.0fs), CDN2 = 1 cold server, origin %.0f Mbps\n\n",
              100 * base.degraded_factor, base.incident_at,
              base.origin_capacity / 1e6);

  std::printf("%-9s %5s %8s %8s %11s %9s %10s %10s %9s\n", "mode", "seed",
              "cdn-sw", "srv-sw", "cdn1-share", "cdn2-hit", "post-buf",
              "post-eng", "stalls");
  for (ControlMode mode :
       {ControlMode::kBaseline, ControlMode::kEona, ControlMode::kOracle}) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      scenarios::CoarseControlConfig config = base;
      config.mode = mode;
      config.seed = seed;
      scenarios::CoarseControlResult r = scenarios::run_coarse_control(config);
      std::printf("%-9s %5llu %8llu %8llu %11.3f %9.3f %10.4f %10.3f %9llu\n",
                  scenarios::to_string(mode),
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(r.cdn_switches),
                  static_cast<unsigned long long>(r.server_switches),
                  r.cdn1_traffic_share, r.cdn2_hit_ratio,
                  r.post_incident.mean_buffering,
                  r.post_incident.mean_engagement,
                  static_cast<unsigned long long>(r.qoe.stalls));
    }
  }

  std::printf("\n--- severity sweep: how far server A degrades ---\n");
  std::printf("%10s | %10s %10s | %8s %8s   (post-incident engagement / "
              "cdn-switches)\n",
              "degraded", "baseline", "eona", "base-sw", "eona-sw");
  for (double factor : {0.50, 0.20, 0.05, 0.01}) {
    scenarios::CoarseControlConfig config = base;
    config.degraded_factor = factor;
    config.mode = ControlMode::kBaseline;
    scenarios::CoarseControlResult b = scenarios::run_coarse_control(config);
    config.mode = ControlMode::kEona;
    scenarios::CoarseControlResult e = scenarios::run_coarse_control(config);
    std::printf("%9.0f%% | %10.3f %10.3f | %8llu %8llu\n", 100 * factor,
                b.post_incident.mean_engagement,
                e.post_incident.mean_engagement,
                static_cast<unsigned long long>(b.cdn_switches),
                static_cast<unsigned long long>(e.cdn_switches));
  }
  return 0;
}
