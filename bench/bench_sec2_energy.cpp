// E6 (§2/§5): server energy management with and without application
// visibility.
//
// Paper claim: operators "are often too conservative or too aggressive in
// the decisions because they cannot observe how these decisions impact user
// applications"; with A2I the InfP "can model how the server capacity
// impacts quality of experience and redeploy servers if the quality
// degrades". Expected shape: sweeping aggressiveness traces the energy/QoE
// frontier -- at the aggressive end the blind controller trades experience
// for watts, the guarded controller gives up a sliver of savings and holds
// experience.
#include <cstdio>

#include "scenarios/energy.hpp"

using namespace eona;

int main() {
  std::printf("=== E6 / Sec 2+5: energy-saving frontier, blind vs "
              "A2I-guarded ===\n");
  scenarios::EnergyScenarioConfig base;
  std::printf("world: %zu x %.0f Mbps servers, day=%.2f/s night=%.2f/s, "
              "%zu cycles x %.0fs; shutdown forfeits the server's cache\n\n",
              base.servers, base.server_capacity / 1e6, base.day_rate,
              base.night_rate, base.cycles, base.phase_length);

  std::printf("%-9s %10s | %8s %8s | %10s %10s %8s | %6s %6s\n", "mode",
              "scaledown", "saved%", "online", "buffering", "night-buf",
              "engage", "shut", "wake");
  for (double aggressiveness : {0.20, 0.35, 0.50, 0.65, 0.80}) {
    for (bool eona : {false, true}) {
      scenarios::EnergyScenarioConfig config = base;
      config.eona = eona;
      config.scale_down_load = aggressiveness;
      if (config.scale_up_load <= aggressiveness)
        config.scale_up_load = aggressiveness + 0.1;
      scenarios::EnergyScenarioResult r = scenarios::run_energy(config);
      std::printf("%-9s %10.2f | %7.1f%% %8.2f | %10.4f %10.4f %8.3f | "
                  "%6llu %6llu\n",
                  eona ? "eona" : "baseline", aggressiveness,
                  100 * r.saved_fraction, r.mean_online, r.qoe.mean_buffering,
                  r.night_qoe.mean_buffering, r.qoe.mean_engagement,
                  static_cast<unsigned long long>(r.shutdowns),
                  static_cast<unsigned long long>(r.wakes));
    }
  }

  std::printf("\n--- diurnal trace (aggressive, EONA): online servers over "
              "time ---\n");
  scenarios::EnergyScenarioConfig config = base;
  config.eona = true;
  config.scale_down_load = 0.65;
  scenarios::EnergyScenarioResult r = scenarios::run_energy(config);
  TimePoint horizon = 2.0 * base.phase_length * static_cast<double>(base.cycles);
  std::printf("%8s %8s %9s\n", "t[s]", "online", "stalled");
  for (const auto& s :
       r.metrics.series("online_servers").resample(0, horizon, 120.0)) {
    std::printf("%8.0f %8.0f %9.3f\n", s.t, s.value,
                r.metrics.series("stalled_fraction").value_at(s.t));
  }
  return 0;
}
