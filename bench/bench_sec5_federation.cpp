// E19 (§5 federation): the brokered exchange containing a lying tenant.
//
// Three AppP tenants share two access ISPs through one eona::Exchange; each
// ISP divides a fixed egress pool across the tenants' ingress links in
// proportion to the A2I traffic forecasts it sees. Tenant 0 multiplies its
// exported forecasts by 6x to grab pool share; tenants 1 and 2 are honest.
//
// Sweep: seeds x {broker off, broker on}. With the broker off the inflated
// claims pass straight through and the honest tenants' viewers are squeezed
// to a sliver of each pool; with the broker on, the exchange clamps every
// tenant's per-ISP claims to its egress-share quota (one equal share each)
// before any InfP sees them, so the lie stops paying.
//
// Verdicts (acceptance thresholds):
//  * per seed, the honest tenants' mean engagement is strictly higher with
//    the broker on than off;
//  * per seed, their mean bitrate is strictly higher with the broker on;
//  * the quota clamp fires only in the broker arm (every seed);
//  * the honest side's mean egress share (over seeds) rises under the broker;
//  * same seed + arm reproduces bit-identical numbers.
//
// Always writes a machine-readable JSON summary (per-run rows, per-arm
// means, verdicts) for the CI bench artifact; path defaults to
// BENCH_federation.json, overridden by argv[1] or EONA_BENCH_OUT. CI runs a
// session-reduced sweep via EONA_FEDERATION_RUN_DURATION /
// EONA_FEDERATION_ARRIVAL_RATE.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "eona/json.hpp"
#include "scenarios/federation.hpp"

using namespace eona;

namespace {

constexpr std::uint64_t kSeeds[] = {1, 2, 3, 4, 5};

double env_or(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : fallback;
}

scenarios::FederationResult run(std::uint64_t seed, bool broker) {
  scenarios::FederationConfig config;
  config.seed = seed;
  config.broker = broker;
  config.run_duration = env_or("EONA_FEDERATION_RUN_DURATION", 600.0);
  config.arrival_rate = env_or("EONA_FEDERATION_ARRIVAL_RATE", 0.2);
  return scenarios::run_federation(config);
}

void print_row(const char* arm, std::uint64_t seed,
               const scenarios::FederationResult& r) {
  std::printf("%9s %4llu | %7.3f %7.2f | %7.3f %7.2f | %6.3f %6.3f %6llu\n",
              arm, static_cast<unsigned long long>(seed),
              r.liar.mean_engagement, r.liar.mean_bitrate / 1e6,
              r.victim_mean_engagement, r.victim_mean_bitrate / 1e6,
              r.liar_share, r.victim_share,
              static_cast<unsigned long long>(r.clamps));
}

core::JsonValue row_json(std::uint64_t seed, bool broker,
                         const scenarios::FederationResult& r) {
  core::JsonValue row = core::JsonValue::object();
  row.set("seed", core::JsonValue::number(static_cast<double>(seed)));
  row.set("broker", core::JsonValue::boolean(broker));
  row.set("liar_engagement", core::JsonValue::number(r.liar.mean_engagement));
  row.set("liar_bitrate", core::JsonValue::number(r.liar.mean_bitrate));
  row.set("victim_engagement",
          core::JsonValue::number(r.victim_mean_engagement));
  row.set("victim_bitrate", core::JsonValue::number(r.victim_mean_bitrate));
  row.set("victim_stalls",
          core::JsonValue::number(
              static_cast<double>(r.victim1.stalls + r.victim2.stalls)));
  row.set("liar_share", core::JsonValue::number(r.liar_share));
  row.set("victim_share", core::JsonValue::number(r.victim_share));
  row.set("clamps", core::JsonValue::number(static_cast<double>(r.clamps)));
  row.set("rate_limited",
          core::JsonValue::number(static_cast<double>(r.rate_limited)));
  row.set("epoch_rejected",
          core::JsonValue::number(static_cast<double>(r.epoch_rejected)));
  return row;
}

struct Means {
  double victim_engagement = 0.0;
  double victim_bitrate = 0.0;
  double victim_share = 0.0;
  double liar_share = 0.0;
};

Means mean_of(const std::vector<scenarios::FederationResult>& runs) {
  Means m;
  for (const auto& r : runs) {
    m.victim_engagement += r.victim_mean_engagement;
    m.victim_bitrate += r.victim_mean_bitrate;
    m.victim_share += r.victim_share;
    m.liar_share += r.liar_share;
  }
  auto n = static_cast<double>(runs.size());
  m.victim_engagement /= n;
  m.victim_bitrate /= n;
  m.victim_share /= n;
  m.liar_share /= n;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_federation.json";
  if (const char* env = std::getenv("EONA_BENCH_OUT")) out_path = env;
  if (argc > 1) out_path = argv[1];

  std::printf("=== E19 / Sec 5: brokered exchange vs a lying tenant ===\n\n");
  std::printf("%9s %4s | %7s %7s | %7s %7s | %6s %6s %6s\n", "arm", "seed",
              "liar-en", "liar-Mb", "vict-en", "vict-Mb", "l-shr", "v-shr",
              "clamps");

  core::JsonValue rows = core::JsonValue::array();
  std::vector<scenarios::FederationResult> off_runs, on_runs;
  bool qoe_better = true, bitrate_better = true, clamp_only_on = true;
  for (std::uint64_t seed : kSeeds) {
    scenarios::FederationResult off = run(seed, false);
    scenarios::FederationResult on = run(seed, true);
    print_row("unbroked", seed, off);
    print_row("brokered", seed, on);
    rows.push_back(row_json(seed, false, off));
    rows.push_back(row_json(seed, true, on));
    qoe_better &= on.victim_mean_engagement > off.victim_mean_engagement;
    bitrate_better &= on.victim_mean_bitrate > off.victim_mean_bitrate;
    clamp_only_on &= on.clamps > 0 && off.clamps == 0;
    off_runs.push_back(std::move(off));
    on_runs.push_back(std::move(on));
  }

  Means off_mean = mean_of(off_runs);
  Means on_mean = mean_of(on_runs);
  std::printf("\n%9s mean | %7s %7s | %7.3f %7.2f | %6.3f %6.3f\n",
              "unbroked", "", "", off_mean.victim_engagement,
              off_mean.victim_bitrate / 1e6, off_mean.liar_share,
              off_mean.victim_share);
  std::printf("%9s mean | %7s %7s | %7.3f %7.2f | %6.3f %6.3f\n", "brokered",
              "", "", on_mean.victim_engagement, on_mean.victim_bitrate / 1e6,
              on_mean.liar_share, on_mean.victim_share);

  std::printf("\n--- reproducibility: seed 1, brokered, same config twice "
              "---\n");
  scenarios::FederationResult again = run(kSeeds[0], true);
  const scenarios::FederationResult& first = on_runs.front();
  bool reproducible =
      again.victim_mean_engagement == first.victim_mean_engagement &&
      again.victim_mean_bitrate == first.victim_mean_bitrate &&
      again.liar.mean_engagement == first.liar.mean_engagement &&
      again.liar_share == first.liar_share &&
      again.victim_share == first.victim_share &&
      again.clamps == first.clamps;
  std::printf("run1 vict-en=%.6f clamps=%llu | run2 vict-en=%.6f "
              "clamps=%llu\n",
              first.victim_mean_engagement,
              static_cast<unsigned long long>(first.clamps),
              again.victim_mean_engagement,
              static_cast<unsigned long long>(again.clamps));

  bool share_recovered = on_mean.victim_share > off_mean.victim_share;
  std::printf("\n--- verdicts ---\n");
  std::printf("victim engagement higher with broker on every seed: %s\n",
              qoe_better ? "PASS" : "FAIL");
  std::printf("victim bitrate higher with broker on every seed: %s\n",
              bitrate_better ? "PASS" : "FAIL");
  std::printf("quota clamp fires only in the broker arm: %s\n",
              clamp_only_on ? "PASS" : "FAIL");
  std::printf("victim mean egress share %.3f -> %.3f (need higher): %s\n",
              off_mean.victim_share, on_mean.victim_share,
              share_recovered ? "PASS" : "FAIL");
  std::printf("same seed reproduces identical numbers: %s\n",
              reproducible ? "PASS" : "FAIL");

  core::JsonValue doc = core::JsonValue::object();
  doc.set("experiment", core::JsonValue::string("E19_sec5_federation"));
  doc.set("runs", std::move(rows));
  core::JsonValue means = core::JsonValue::object();
  for (const auto& [label, m] :
       {std::pair<const char*, Means>{"unbrokered", off_mean},
        std::pair<const char*, Means>{"brokered", on_mean}}) {
    core::JsonValue entry = core::JsonValue::object();
    entry.set("victim_engagement", core::JsonValue::number(m.victim_engagement));
    entry.set("victim_bitrate", core::JsonValue::number(m.victim_bitrate));
    entry.set("victim_share", core::JsonValue::number(m.victim_share));
    entry.set("liar_share", core::JsonValue::number(m.liar_share));
    means.set(label, std::move(entry));
  }
  doc.set("means", std::move(means));
  core::JsonValue verdicts = core::JsonValue::object();
  verdicts.set("victim_qoe_recovered", core::JsonValue::boolean(qoe_better));
  verdicts.set("victim_bitrate_recovered",
               core::JsonValue::boolean(bitrate_better));
  verdicts.set("clamp_only_in_broker_arm",
               core::JsonValue::boolean(clamp_only_on));
  verdicts.set("victim_share_recovered",
               core::JsonValue::boolean(share_recovered));
  verdicts.set("reproducible", core::JsonValue::boolean(reproducible));
  doc.set("verdicts", std::move(verdicts));
  std::ofstream out(out_path, std::ios::binary);
  if (out) {
    std::string text = doc.dump(2);
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out << "\n";
    std::fprintf(stderr, "bench results written to %s\n", out_path.c_str());
  }

  return (qoe_better && bitrate_better && clamp_only_on && share_recovered &&
          reproducible)
             ? 0
             : 1;
}
