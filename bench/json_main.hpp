// Shared main() for the google-benchmark targets: runs the registered
// benches with the normal console output AND always writes a machine-
// readable JSON result file (items/s per stage, counters, run context) so
// the repo's perf trajectory can be tracked run over run.
//
// The output path defaults to the per-target name passed to
// EONA_BENCHMARK_JSON_MAIN (written into the working directory); set
// EONA_BENCH_OUT or pass --benchmark_out=... to override it.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

namespace eona::bench {

inline int run_with_json_report(int argc, char** argv,
                                const std::string& default_out) {
  std::string path = default_out;
  if (const char* env = std::getenv("EONA_BENCH_OUT")) path = env;

  // Respect an explicit --benchmark_out; otherwise point it at our default
  // so the library writes the JSON file alongside the console output.
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  std::vector<std::string> args(argv, argv + argc);
  if (!has_out) {
    args.push_back("--benchmark_out=" + path);
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> raw;
  raw.reserve(args.size());
  for (auto& a : args) raw.push_back(a.data());
  int raw_argc = static_cast<int>(raw.size());

  benchmark::Initialize(&raw_argc, raw.data());
  if (benchmark::ReportUnrecognizedArguments(raw_argc, raw.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!has_out) std::cerr << "bench results written to " << path << "\n";
  return 0;
}

}  // namespace eona::bench

#define EONA_BENCHMARK_JSON_MAIN(default_out)                             \
  int main(int argc, char** argv) {                                       \
    return eona::bench::run_with_json_report(argc, argv, (default_out));  \
  }
