// E2 (Fig 3): flash crowd at the access ISP -- regenerates the scenario the
// figure describes as a quantitative table plus the recovery timeline.
//
// Paper claim: the application-level loop "first tried to switch across
// multiple CDNs but clients still saw very high buffering; had the AppP
// known explicit congestion signals from the ISP it would have adapted the
// bitrate instead". Expected shape: baseline burns hundreds-to-thousands of
// futile CDN switches and suffers on joins/engagement; EONA performs zero
// switches, steps the bitrate down through the crowd, and recovers after.
#include <cstdio>

#include "scenarios/flashcrowd.hpp"

using namespace eona;
using scenarios::ControlMode;

int main() {
  std::printf("=== E2 / Figure 3: flash crowd congests the access ISP ===\n");
  scenarios::FlashCrowdConfig base;
  std::printf("world: access=%.0f Mbps, videos=%.2f/s, surge=%.0f%% of "
              "access during [%.0f, %.0f] s, seeds x3\n\n",
              base.access_capacity / 1e6, base.arrival_rate,
              100 * base.crowd_background_fraction, base.crowd_start,
              base.crowd_end);

  std::printf("%-9s %5s %9s %10s %9s %8s %8s %9s %10s\n", "mode", "seed",
              "sessions", "buffering", "bitrate", "join", "engage",
              "cdn-sw", "peak-stall");
  for (ControlMode mode :
       {ControlMode::kBaseline, ControlMode::kEona, ControlMode::kOracle}) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      scenarios::FlashCrowdConfig config = base;
      config.mode = mode;
      config.seed = seed;
      scenarios::FlashCrowdResult r = scenarios::run_flash_crowd(config);
      std::printf("%-9s %5llu %9zu %10.4f %8.2fM %7.2fs %8.3f %9llu %10.2f\n",
                  scenarios::to_string(mode),
                  static_cast<unsigned long long>(seed), r.qoe.sessions,
                  r.qoe.mean_buffering, r.qoe.mean_bitrate / 1e6,
                  r.crowd_qoe.mean_join_time, r.qoe.mean_engagement,
                  static_cast<unsigned long long>(r.qoe.cdn_switches),
                  r.peak_stalled_fraction);
    }
  }

  std::printf("\n--- EONA timeline (the figure's 'switch down bitrate' arc) "
              "---\n");
  scenarios::FlashCrowdConfig config = base;
  config.mode = ControlMode::kEona;
  scenarios::FlashCrowdResult r = scenarios::run_flash_crowd(config);
  std::printf("%8s %10s %10s %8s\n", "t[s]", "stalled", "bitrate", "active");
  for (const auto& s : r.metrics.series("stalled_fraction")
                           .resample(0, base.run_duration, 30.0)) {
    std::printf("%8.0f %10.3f %9.2fM %8.0f\n", s.t, s.value,
                r.metrics.series("mean_bitrate").value_at(s.t) / 1e6,
                r.metrics.series("active_sessions").value_at(s.t));
  }
  return 0;
}
