// E3 (Fig 4): cellular InfPs inferring web experience from network metrics
// vs receiving it directly over A2I.
//
// Paper claim: inference from passive network features is a stop-gap --
// "inaccurate and requiring expensive deep inspection"; the AppP is in a
// better position to measure and should export directly. Expected shape:
// A2I's error stays flat (it IS the measurement, modulo aggregation) while
// inference error grows with the InfP's measurement noise and shrinking
// labelled panels.
#include <cstdio>

#include "scenarios/cellular_web.hpp"

using namespace eona;

int main() {
  std::printf("=== E3 / Figure 4: inferred vs directly-measured web QoE ===\n");
  scenarios::CellularWebConfig base;
  std::printf("world: %zu sessions over %zu sectors, k-anonymity=%llu, "
              "engagement is the target metric\n\n",
              base.sessions, base.sectors,
              static_cast<unsigned long long>(base.k_anonymity));

  std::printf("--- sweep: InfP feature-measurement noise (panel = %.0f%%) ---\n",
              100 * base.labeled_fraction);
  std::printf("%6s | %9s %9s | %9s %9s | %9s %9s\n", "noise", "inf-MAE",
              "a2i-MAE", "inf-gMAE", "a2i-gMAE", "inf-rank", "a2i-rank");
  for (double noise : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    scenarios::CellularWebConfig config = base;
    config.feature_noise = noise;
    scenarios::CellularWebResult r = scenarios::run_cellular_web(config);
    std::printf("%6.2f | %9.4f %9.4f | %9.4f %9.4f | %9.3f %9.3f\n", noise,
                r.inference_mae, r.a2i_mae, r.inference_group_mae,
                r.a2i_group_mae, r.inference_rank_corr, r.a2i_rank_corr);
  }

  std::printf("\n--- sweep: labelled panel size (noise = %.2f) ---\n",
              base.feature_noise);
  std::printf("%6s | %9s %9s | %9s %9s\n", "panel", "inf-MAE", "a2i-MAE",
              "inf-gMAE", "a2i-gMAE");
  for (double panel : {0.05, 0.1, 0.2, 0.4}) {
    scenarios::CellularWebConfig config = base;
    config.labeled_fraction = panel;
    scenarios::CellularWebResult r = scenarios::run_cellular_web(config);
    std::printf("%5.0f%% | %9.4f %9.4f | %9.4f %9.4f\n", 100 * panel,
                r.inference_mae, r.a2i_mae, r.inference_group_mae,
                r.a2i_group_mae);
  }

  std::printf("\n--- sweep: k-anonymity floor (suppression cost of privacy) ---\n");
  std::printf("%6s | %12s %9s\n", "k", "suppressed", "a2i-MAE");
  for (std::uint64_t k : {1ull, 10ull, 50ull, 150ull, 400ull}) {
    scenarios::CellularWebConfig config = base;
    config.k_anonymity = k;
    scenarios::CellularWebResult r = scenarios::run_cellular_web(config);
    std::printf("%6llu | %9zu/%zu %9.4f\n",
                static_cast<unsigned long long>(k), r.suppressed_sectors,
                base.sectors, r.a2i_mae);
  }
  return 0;
}
