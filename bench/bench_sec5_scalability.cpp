// E9 (§5 "scalability"): "a typical AppP can collect user experience for
// tens of millions of sessions each day, and such large volumes of data can
// cause serious scalability challenges for the control logic of InfPs".
//
// Microbenches of every stage of the pipeline that volume flows through:
// beacon ingest + group-by, windowed aggregation, quantile sketch updates,
// the k-anonymity gate, the max-min rate solver, the incremental/batched
// data plane under flash-crowd churn, and the fluid transfer plane. items/s
// here extrapolates directly to sessions/day. Results are also written to
// BENCH_sec5_scalability.json (see json_main.hpp) so the perf trajectory is
// tracked run over run.
#include <benchmark/benchmark.h>

#include "json_main.hpp"
#include "net/transfer.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/anonymity.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/p2_quantile.hpp"
#include "sim/rng.hpp"

namespace {

using namespace eona;

telemetry::SessionRecord random_record(sim::Rng& rng, int isps, int cdns,
                                       TimePoint t) {
  telemetry::SessionRecord r;
  r.session = SessionId(rng.next_u64());
  r.dims.isp = IspId(static_cast<std::uint32_t>(rng.uniform_int(0, isps - 1)));
  r.dims.cdn = CdnId(static_cast<std::uint32_t>(rng.uniform_int(0, cdns - 1)));
  r.dims.server =
      ServerId(static_cast<std::uint32_t>(rng.uniform_int(0, 31)));
  r.metrics.buffering_ratio = rng.uniform(0, 0.3);
  r.metrics.avg_bitrate = rng.uniform(2e5, 6e6);
  r.metrics.join_time = rng.uniform(0, 10);
  r.metrics.engagement = rng.uniform(0, 1);
  r.metrics.bytes_delivered = rng.uniform(1e5, 1e8);
  r.timestamp = t;
  return r;
}

void BM_GroupByIngest(benchmark::State& state) {
  sim::Rng rng(1);
  telemetry::GroupByAggregator agg(telemetry::Dim::kIsp |
                                   telemetry::Dim::kCdn);
  auto isps = static_cast<int>(state.range(0));
  std::vector<telemetry::SessionRecord> batch;
  for (int i = 0; i < 4096; ++i)
    batch.push_back(random_record(rng, isps, 4, 0.0));
  std::size_t i = 0;
  for (auto _ : state) {
    agg.ingest(batch[i++ & 4095]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["groups"] = static_cast<double>(agg.group_count());
}
BENCHMARK(BM_GroupByIngest)->Arg(16)->Arg(256);

void BM_WindowedIngest(benchmark::State& state) {
  sim::Rng rng(2);
  telemetry::WindowedAggregator agg(
      telemetry::Dim::kIsp | telemetry::Dim::kCdn, 60.0, 6);
  std::vector<telemetry::SessionRecord> batch;
  for (int i = 0; i < 4096; ++i)
    batch.push_back(random_record(rng, 64, 4, rng.uniform(0, 600)));
  std::size_t i = 0;
  for (auto _ : state) agg.ingest(batch[i++ & 4095]);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WindowedIngest);

void BM_WindowedSnapshot(benchmark::State& state) {
  sim::Rng rng(3);
  telemetry::WindowedAggregator agg(
      telemetry::Dim::kIsp | telemetry::Dim::kCdn, 60.0, 6);
  auto isps = static_cast<int>(state.range(0));
  for (int i = 0; i < 100000; ++i)
    agg.ingest(random_record(rng, isps, 4, rng.uniform(540, 600)));
  for (auto _ : state) benchmark::DoNotOptimize(agg.snapshot(600.0));
}
BENCHMARK(BM_WindowedSnapshot)->Arg(16)->Arg(256);

void BM_P2QuantileUpdate(benchmark::State& state) {
  sim::Rng rng(4);
  telemetry::P2Quantile q(0.9);
  std::vector<double> values(4096);
  for (auto& v : values) v = rng.uniform(0, 1);
  std::size_t i = 0;
  for (auto _ : state) q.add(values[i++ & 4095]);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_P2QuantileUpdate);

void BM_KAnonymityGate(benchmark::State& state) {
  sim::Rng rng(5);
  telemetry::GroupByAggregator agg(telemetry::Dim::kIsp |
                                   telemetry::Dim::kCdn |
                                   telemetry::Dim::kServer);
  for (int i = 0; i < 200000; ++i)
    agg.ingest(random_record(rng, 64, 4, 0.0));
  auto snapshot = agg.snapshot();
  for (auto _ : state)
    benchmark::DoNotOptimize(telemetry::k_anonymity_gate(snapshot, 50));
  state.counters["groups"] = static_cast<double>(snapshot.size());
}
BENCHMARK(BM_KAnonymityGate);

/// Max-min solver cost vs flow count on a shared-backbone topology: the
/// per-change cost of the fluid network model.
void BM_MaxMinRecompute(benchmark::State& state) {
  net::Topology topo;
  NodeId prev = topo.add_node(net::NodeKind::kRouter, "n0");
  std::vector<LinkId> links;
  for (int i = 1; i < 12; ++i) {
    NodeId next = topo.add_node(net::NodeKind::kRouter, "n");
    links.push_back(topo.add_link(prev, next, mbps(100), 0.001));
    prev = next;
  }
  sim::Rng rng(6);
  std::vector<net::FlowSpec> flows;
  auto count = static_cast<std::size_t>(state.range(0));
  for (std::size_t f = 0; f < count; ++f) {
    auto start = static_cast<std::size_t>(rng.uniform_int(0, 9));
    auto end = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(start) + 1, 11));
    net::Path path(links.begin() + static_cast<long>(start),
                   links.begin() + static_cast<long>(end));
    flows.push_back(net::FlowSpec{
        path, rng.bernoulli(0.5)
                  ? std::numeric_limits<double>::infinity()
                  : mbps(rng.uniform(0.5, 20))});
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(net::max_min_allocation(topo, flows));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MaxMinRecompute)->Arg(10)->Arg(100)->Arg(1000);

/// Flash-crowd churn on the live data plane: a burst of K flow arrivals
/// followed by K departures on a shared bottleneck, with a handful of
/// long-lived elastic flows riding along. batched=1 is the production path
/// (one Network::Batch per burst, incremental dirty-component re-solve);
/// batched=0 is the per-mutation from-scratch baseline (every add/remove
/// re-solves the whole network). items/s counts mutations absorbed by the
/// data plane.
void BM_FlashCrowdChurn(benchmark::State& state) {
  const auto crowd = static_cast<std::size_t>(state.range(0));
  const bool batched = state.range(1) == 1;

  net::Topology topo;
  NodeId client = topo.add_node(net::NodeKind::kClientPop, "clients");
  NodeId edge = topo.add_node(net::NodeKind::kRouter, "isp-edge");
  NodeId srv1 = topo.add_node(net::NodeKind::kCdnServer, "cdn1");
  NodeId srv2 = topo.add_node(net::NodeKind::kCdnServer, "cdn2");
  LinkId access = topo.add_link(edge, client, mbps(200), 0.005);
  LinkId peer1 = topo.add_link(srv1, edge, gbps(1), 0.008);
  LinkId peer2 = topo.add_link(srv2, edge, gbps(1), 0.008);

  net::Network network(topo, batched
                                 ? net::Network::RecomputeMode::kIncremental
                                 : net::Network::RecomputeMode::kFullSolve);
  // Long-lived sessions sharing the bottleneck with the crowd.
  for (int i = 0; i < 16; ++i)
    network.add_flow(i % 2 == 0 ? net::Path{peer1, access}
                                : net::Path{peer2, access});
  BitsPerSecond per_flow = mbps(150) / static_cast<double>(crowd);

  std::vector<FlowId> ids;
  ids.reserve(crowd);
  for (auto _ : state) {
    ids.clear();
    if (batched) {
      {
        net::Network::Batch arrival(network);
        for (std::size_t i = 0; i < crowd; ++i)
          ids.push_back(network.add_flow({access}, per_flow));
      }
      {
        net::Network::Batch departure(network);
        for (FlowId f : ids) network.remove_flow(f);
      }
    } else {
      for (std::size_t i = 0; i < crowd; ++i)
        ids.push_back(network.add_flow({access}, per_flow));
      for (FlowId f : ids) network.remove_flow(f);
    }
    benchmark::DoNotOptimize(network.link_allocated(access));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(crowd));
  state.counters["recomputes"] =
      static_cast<double>(network.recompute_count());
}
BENCHMARK(BM_FlashCrowdChurn)
    ->ArgNames({"K", "batched"})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({512, 0})
    ->Args({512, 1})
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->Unit(benchmark::kMicrosecond);

/// Localized churn across many independent sectors: mutations touch one
/// sector at a time, so the incremental path re-solves only that sector's
/// component while the from-scratch baseline pays for all of them on every
/// change. This isolates the dirty-component win from the batching win.
void BM_SectorLocalChurn(benchmark::State& state) {
  const bool incremental = state.range(0) == 1;
  constexpr std::size_t kSectors = 64;
  constexpr std::size_t kFlowsPerSector = 16;

  net::Topology topo;
  NodeId core = topo.add_node(net::NodeKind::kRouter, "core");
  std::vector<LinkId> sectors;
  for (std::size_t s = 0; s < kSectors; ++s) {
    NodeId tower = topo.add_node(net::NodeKind::kClientPop, "sector");
    sectors.push_back(topo.add_link(core, tower, mbps(50), 0.015));
  }

  net::Network network(topo, incremental
                                 ? net::Network::RecomputeMode::kIncremental
                                 : net::Network::RecomputeMode::kFullSolve);
  for (std::size_t s = 0; s < kSectors; ++s)
    for (std::size_t f = 0; f < kFlowsPerSector; ++f)
      network.add_flow({sectors[s]});

  sim::Rng rng(8);
  std::size_t sector = 0;
  for (auto _ : state) {
    sector = (sector + 1) % kSectors;
    FlowId f = network.add_flow({sectors[sector]},
                                mbps(rng.uniform(0.5, 5)));
    network.remove_flow(f);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_SectorLocalChurn)
    ->ArgNames({"incremental"})
    ->Arg(0)
    ->Arg(1);

/// End-to-end fluid transfer plane: chunk-sized transfers arriving and
/// completing on a shared bottleneck (events/s of the emulator itself).
void BM_TransferPlane(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    net::Topology topo;
    NodeId a = topo.add_node(net::NodeKind::kRouter, "a");
    NodeId b = topo.add_node(net::NodeKind::kRouter, "b");
    LinkId ab = topo.add_link(a, b, mbps(100), 0.001);
    sim::Scheduler sched;
    net::Network network(topo);
    net::TransferManager transfers(sched, network);
    sim::Rng rng(7);
    auto count = static_cast<int>(state.range(0));
    int completed = 0;
    for (int i = 0; i < count; ++i) {
      sched.schedule_at(rng.uniform(0, 10), [&, ab] {
        transfers.start({ab}, megabits(rng.uniform(1, 10)),
                        [&](net::TransferId) { ++completed; });
      });
    }
    state.ResumeTiming();
    sched.run_all();
    benchmark::DoNotOptimize(completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TransferPlane)->Arg(100)->Arg(500)->Unit(benchmark::kMillisecond);

}  // namespace

EONA_BENCHMARK_JSON_MAIN("BENCH_sec5_scalability.json")
