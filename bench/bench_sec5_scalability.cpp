// E9 (§5 "scalability"): "a typical AppP can collect user experience for
// tens of millions of sessions each day, and such large volumes of data can
// cause serious scalability challenges for the control logic of InfPs".
//
// Microbenches of every stage of the pipeline that volume flows through:
// beacon ingest + group-by, windowed aggregation, quantile sketch updates,
// the k-anonymity gate, the max-min rate solver, and the fluid transfer
// plane. items/s here extrapolates directly to sessions/day.
#include <benchmark/benchmark.h>

#include "net/transfer.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/anonymity.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/p2_quantile.hpp"
#include "sim/rng.hpp"

namespace {

using namespace eona;

telemetry::SessionRecord random_record(sim::Rng& rng, int isps, int cdns,
                                       TimePoint t) {
  telemetry::SessionRecord r;
  r.session = SessionId(rng.next_u64());
  r.dims.isp = IspId(static_cast<std::uint32_t>(rng.uniform_int(0, isps - 1)));
  r.dims.cdn = CdnId(static_cast<std::uint32_t>(rng.uniform_int(0, cdns - 1)));
  r.dims.server =
      ServerId(static_cast<std::uint32_t>(rng.uniform_int(0, 31)));
  r.metrics.buffering_ratio = rng.uniform(0, 0.3);
  r.metrics.avg_bitrate = rng.uniform(2e5, 6e6);
  r.metrics.join_time = rng.uniform(0, 10);
  r.metrics.engagement = rng.uniform(0, 1);
  r.metrics.bytes_delivered = rng.uniform(1e5, 1e8);
  r.timestamp = t;
  return r;
}

void BM_GroupByIngest(benchmark::State& state) {
  sim::Rng rng(1);
  telemetry::GroupByAggregator agg(telemetry::Dim::kIsp |
                                   telemetry::Dim::kCdn);
  auto isps = static_cast<int>(state.range(0));
  std::vector<telemetry::SessionRecord> batch;
  for (int i = 0; i < 4096; ++i)
    batch.push_back(random_record(rng, isps, 4, 0.0));
  std::size_t i = 0;
  for (auto _ : state) {
    agg.ingest(batch[i++ & 4095]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["groups"] = static_cast<double>(agg.group_count());
}
BENCHMARK(BM_GroupByIngest)->Arg(16)->Arg(256);

void BM_WindowedIngest(benchmark::State& state) {
  sim::Rng rng(2);
  telemetry::WindowedAggregator agg(
      telemetry::Dim::kIsp | telemetry::Dim::kCdn, 60.0, 6);
  std::vector<telemetry::SessionRecord> batch;
  for (int i = 0; i < 4096; ++i)
    batch.push_back(random_record(rng, 64, 4, rng.uniform(0, 600)));
  std::size_t i = 0;
  for (auto _ : state) agg.ingest(batch[i++ & 4095]);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WindowedIngest);

void BM_WindowedSnapshot(benchmark::State& state) {
  sim::Rng rng(3);
  telemetry::WindowedAggregator agg(
      telemetry::Dim::kIsp | telemetry::Dim::kCdn, 60.0, 6);
  auto isps = static_cast<int>(state.range(0));
  for (int i = 0; i < 100000; ++i)
    agg.ingest(random_record(rng, isps, 4, rng.uniform(540, 600)));
  for (auto _ : state) benchmark::DoNotOptimize(agg.snapshot(600.0));
}
BENCHMARK(BM_WindowedSnapshot)->Arg(16)->Arg(256);

void BM_P2QuantileUpdate(benchmark::State& state) {
  sim::Rng rng(4);
  telemetry::P2Quantile q(0.9);
  std::vector<double> values(4096);
  for (auto& v : values) v = rng.uniform(0, 1);
  std::size_t i = 0;
  for (auto _ : state) q.add(values[i++ & 4095]);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_P2QuantileUpdate);

void BM_KAnonymityGate(benchmark::State& state) {
  sim::Rng rng(5);
  telemetry::GroupByAggregator agg(telemetry::Dim::kIsp |
                                   telemetry::Dim::kCdn |
                                   telemetry::Dim::kServer);
  for (int i = 0; i < 200000; ++i)
    agg.ingest(random_record(rng, 64, 4, 0.0));
  auto snapshot = agg.snapshot();
  for (auto _ : state)
    benchmark::DoNotOptimize(telemetry::k_anonymity_gate(snapshot, 50));
  state.counters["groups"] = static_cast<double>(snapshot.size());
}
BENCHMARK(BM_KAnonymityGate);

/// Max-min solver cost vs flow count on a shared-backbone topology: the
/// per-change cost of the fluid network model.
void BM_MaxMinRecompute(benchmark::State& state) {
  net::Topology topo;
  NodeId prev = topo.add_node(net::NodeKind::kRouter, "n0");
  std::vector<LinkId> links;
  for (int i = 1; i < 12; ++i) {
    NodeId next = topo.add_node(net::NodeKind::kRouter, "n");
    links.push_back(topo.add_link(prev, next, mbps(100), 0.001));
    prev = next;
  }
  sim::Rng rng(6);
  std::vector<net::FlowSpec> flows;
  auto count = static_cast<std::size_t>(state.range(0));
  for (std::size_t f = 0; f < count; ++f) {
    auto start = static_cast<std::size_t>(rng.uniform_int(0, 9));
    auto end = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(start) + 1, 11));
    net::Path path(links.begin() + static_cast<long>(start),
                   links.begin() + static_cast<long>(end));
    flows.push_back(net::FlowSpec{
        path, rng.bernoulli(0.5)
                  ? std::numeric_limits<double>::infinity()
                  : mbps(rng.uniform(0.5, 20))});
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(net::max_min_allocation(topo, flows));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MaxMinRecompute)->Arg(10)->Arg(100)->Arg(1000);

/// End-to-end fluid transfer plane: chunk-sized transfers arriving and
/// completing on a shared bottleneck (events/s of the emulator itself).
void BM_TransferPlane(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    net::Topology topo;
    NodeId a = topo.add_node(net::NodeKind::kRouter, "a");
    NodeId b = topo.add_node(net::NodeKind::kRouter, "b");
    LinkId ab = topo.add_link(a, b, mbps(100), 0.001);
    sim::Scheduler sched;
    net::Network network(topo);
    net::TransferManager transfers(sched, network);
    sim::Rng rng(7);
    auto count = static_cast<int>(state.range(0));
    int completed = 0;
    for (int i = 0; i < count; ++i) {
      sched.schedule_at(rng.uniform(0, 10), [&, ab] {
        transfers.start({ab}, megabits(rng.uniform(1, 10)),
                        [&](net::TransferId) { ++completed; });
      });
    }
    state.ResumeTiming();
    sched.run_all();
    benchmark::DoNotOptimize(completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TransferPlane)->Arg(100)->Arg(500)->Unit(benchmark::kMillisecond);

}  // namespace
