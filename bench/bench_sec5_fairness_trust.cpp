// E11 (§5 "fairness and trust"): one InfP serving two AppPs, plus the
// trust auditor against a lying InfP.
//
// Paper claim: "there are other natural concerns, such as fairness when an
// InfP serves multiple AppPs and mutual trust between InfP and AppPs...
// we can envision third-party/neutral validation services." Two
// experiments:
//   (a) fairness/partial deployment -- a large and a small AppP share the
//       Fig 5 world; sweep which of them participates in EONA.
//   (b) trust -- audit honest vs dishonest I2A claim streams and show the
//       trust score separating them.
#include <cstdio>

#include "eona/audit.hpp"
#include "scenarios/fairness.hpp"
#include "sim/rng.hpp"

using namespace eona;

int main() {
  std::printf("=== E11 / Sec 5: fairness across tenants, and trust ===\n\n");
  std::printf("--- (a) two AppPs (large 0.18/s, small 0.07/s) share one ISP "
              "---\n");
  std::printf("%-22s | %8s %8s %6s | %8s %8s %6s | %6s %7s %6s\n",
              "participation", "eng-1", "buf-1", "sw-1", "eng-2", "buf-2",
              "sw-2", "gap", "isp-sw", "green");
  struct Case {
    const char* label;
    bool one, two;
  } cases[] = {
      {"neither (baseline)", false, false},
      {"only large AppP", true, false},
      {"only small AppP", false, true},
      {"both (full EONA)", true, true},
  };
  for (const Case& c : cases) {
    scenarios::FairnessConfig config;
    config.appp1_eona = c.one;
    config.appp2_eona = c.two;
    scenarios::FairnessResult r = scenarios::run_fairness(config);
    std::printf("%-22s | %8.3f %8.4f %6llu | %8.3f %8.4f %6llu | %6.3f "
                "%7zu %6s\n",
                c.label, r.appp1.mean_engagement, r.appp1.mean_buffering,
                static_cast<unsigned long long>(r.appp1.cdn_switches),
                r.appp2.mean_engagement, r.appp2.mean_buffering,
                static_cast<unsigned long long>(r.appp2.cdn_switches),
                r.engagement_gap, r.isp_switches,
                r.green_path ? "yes" : "no");
  }

  std::printf("\n--- (b) trust: auditing honest vs lying I2A streams ---\n");
  std::printf("%-10s %9s %9s %14s %8s\n", "peer", "reports", "checked",
              "contradicted", "trust");
  for (double lie_probability : {0.0, 0.2, 0.5, 1.0}) {
    core::InterfaceAuditor auditor;
    sim::Rng rng(7);
    int reports = 60;
    for (int i = 0; i < reports; ++i) {
      bool actually_congested = rng.bernoulli(0.5);
      bool lie = rng.bernoulli(lie_probability);
      core::I2AReport report;
      report.from = ProviderId(1);
      core::PeeringStatus p;
      p.peering = PeeringId(0);
      p.cdn = CdnId(0);
      p.selected = true;
      p.congested = lie ? !actually_congested : actually_congested;
      report.peerings.push_back(p);

      core::CdnEvidence evidence;
      evidence.cdn = CdnId(0);
      evidence.intended_bitrate = 3e6;
      evidence.sessions = 50;
      evidence.mean_bitrate = actually_congested ? 0.9e6 : 2.95e6;
      evidence.mean_buffering = actually_congested ? 0.12 : 0.001;
      auditor.audit(report, {evidence});
    }
    char label[32];
    std::snprintf(label, sizeof(label), "lies %2.0f%%", 100 * lie_probability);
    std::printf("%-10s %9d %9llu %14llu %8.3f%s\n", label, reports,
                static_cast<unsigned long long>(auditor.claims_checked()),
                static_cast<unsigned long long>(auditor.contradictions()),
                auditor.trust(), auditor.trusted() ? "" : "  << distrusted");
  }
  return 0;
}
