// E12 (§5 "search space exploration"): does EONA information simplify the
// combinatorial knob search?
//
// Paper claim: "with more knobs the search space of options grows
// combinatorially; a natural question is if and how EONA interfaces can
// simplify this exploration process." The what-if engine scores candidate
// joint plans (endpoint x bitrate per session group) with one fluid solve
// each; we sweep the number of groups and compare exhaustive search against
// the same search over the EONA-pruned space (access attribution removes
// endpoint knobs; server hints remove unhealthy options) -- same answer,
// a combinatorial factor fewer evaluations.
#include <chrono>
#include <cstdio>

#include "control/whatif.hpp"

using namespace eona;
using Clock = std::chrono::steady_clock;

namespace {

struct World {
  net::Topology topo;
  NodeId client, edge;
  std::vector<LinkId> server_links;
  LinkId access;
};

World make_world(std::size_t servers) {
  World w;
  w.client = w.topo.add_node(net::NodeKind::kClientPop, "client");
  w.edge = w.topo.add_node(net::NodeKind::kRouter, "edge");
  w.access = w.topo.add_link(w.edge, w.client, mbps(300), 0.005);
  for (std::size_t i = 0; i < servers; ++i) {
    NodeId node = w.topo.add_node(net::NodeKind::kCdnServer,
                                  "s" + std::to_string(i));
    // One pathological server (index 1) that hints will exclude.
    w.server_links.push_back(
        w.topo.add_link(node, w.edge, i == 1 ? mbps(5) : mbps(120), 0.005));
  }
  return w;
}

control::Problem make_problem(const World& w, std::size_t groups) {
  control::Problem p;
  p.ladder = {kbps(300), mbps(1), mbps(3)};
  for (std::size_t g = 0; g < groups; ++g) {
    control::SessionGroup group;
    group.name = "g" + std::to_string(g);
    group.sessions = 15;
    group.isp = IspId(0);
    group.client = w.client;
    group.intended_bitrate = mbps(3);
    p.groups.push_back(group);
    std::vector<control::EndpointOption> opts;
    for (std::size_t s = 0; s < w.server_links.size(); ++s)
      opts.push_back(control::EndpointOption{
          CdnId(0), ServerId(static_cast<std::uint32_t>(s)),
          {w.server_links[s], w.access}});
    p.options.push_back(std::move(opts));
  }
  return p;
}

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

int main() {
  std::printf("=== E12 / Sec 5: EONA-pruned knob search ===\n");
  std::printf("world: 3 servers (one degraded) x 3 bitrates per group; "
              "exhaustive joint search vs hint-pruned search\n\n");

  // Hints: server 1 is unhealthy (what the CDN operator publishes).
  core::I2AReport hints;
  core::ServerHint down;
  down.cdn = CdnId(0);
  down.server = ServerId(1);
  down.online = false;
  hints.server_hints.push_back(down);

  World w = make_world(3);
  control::WhatIfEngine engine(w.topo);

  std::printf("%7s | %12s %10s %9s | %12s %10s %9s | %7s\n", "groups",
              "full-plans", "full-ms", "full-eng", "pruned-plans",
              "pruned-ms", "prune-eng", "speedup");
  for (std::size_t groups : {1u, 2u, 3u, 4u, 5u}) {
    control::Problem p = make_problem(w, groups);

    auto t0 = Clock::now();
    auto full = engine.search(p);
    double full_ms = ms_since(t0);

    t0 = Clock::now();
    auto pruned = engine.search_pruned(p, hints);
    double pruned_ms = ms_since(t0);

    std::printf("%7zu | %12zu %10.2f %9.4f | %12zu %10.2f %9.4f | %6.1fx\n",
                groups, full.evaluated, full_ms,
                full.best_score.mean_engagement, pruned.result.evaluated,
                pruned_ms, pruned.result.best_score.mean_engagement,
                full_ms / std::max(pruned_ms, 1e-6));
  }

  std::printf("\n--- access congestion collapses the endpoint knob entirely "
              "---\n");
  core::I2AReport access;
  core::CongestionSignal c;
  c.isp = IspId(0);
  c.scope = core::CongestionScope::kAccess;
  c.severity = 0.9;
  access.congestion.push_back(c);
  control::Problem p = make_problem(w, 4);
  auto pruned = engine.search_pruned(p, access);
  std::printf("4 groups: %zu plans -> %zu plans (only the bitrate knob "
              "remains), best engagement %.4f\n",
              pruned.plans_before, pruned.plans_after,
              pruned.result.best_score.mean_engagement);
  return 0;
}
