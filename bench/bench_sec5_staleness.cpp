// E8 (§5 "dealing with staleness"): how robust are the EONA control loops
// to delayed interface data?
//
// Paper claim: "the data exported by the EONA interfaces may have some
// inherent delay; the control logics must be designed to be robust against
// such staleness". Expected shape: EONA's advantage decays gracefully as
// the reports age from seconds to minutes -- and even badly stale EONA
// should not underperform the baseline (which uses no reports at all).
#include <cstdio>

#include "scenarios/flashcrowd.hpp"
#include "scenarios/oscillation.hpp"

using namespace eona;
using scenarios::ControlMode;

int main() {
  std::printf("=== E8 / Sec 5: robustness to interface staleness ===\n\n");

  // Baselines for reference (no interface at all).
  scenarios::FlashCrowdConfig fc_base;
  fc_base.mode = ControlMode::kBaseline;
  scenarios::FlashCrowdResult fc_baseline = scenarios::run_flash_crowd(fc_base);
  scenarios::OscillationConfig osc_base;
  osc_base.mode = ControlMode::kBaseline;
  scenarios::OscillationResult osc_baseline =
      scenarios::run_oscillation(osc_base);
  std::printf("reference baseline: flashcrowd engage=%.3f cdn-sw=%llu | "
              "oscillation engage=%.3f switches=%zu\n\n",
              fc_baseline.qoe.mean_engagement,
              static_cast<unsigned long long>(fc_baseline.qoe.cdn_switches),
              osc_baseline.qoe.mean_engagement,
              osc_baseline.appp_switches + osc_baseline.infp_switches);

  std::printf("%9s | %9s %8s %9s | %9s %8s %6s\n", "delay[s]", "fc-engage",
              "fc-sw", "fc-peak", "osc-engage", "osc-sw", "green");
  for (Duration delay : {0.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0}) {
    scenarios::FlashCrowdConfig fc = fc_base;
    fc.mode = ControlMode::kEona;
    fc.a2i_delay = delay;
    fc.i2a_delay = delay;
    scenarios::FlashCrowdResult fr = scenarios::run_flash_crowd(fc);

    scenarios::OscillationConfig osc = osc_base;
    osc.mode = ControlMode::kEona;
    osc.a2i_delay = delay;
    osc.i2a_delay = delay;
    scenarios::OscillationResult orr = scenarios::run_oscillation(osc);

    std::printf("%9.0f | %9.3f %8llu %9.2f | %9.3f %8zu %6s\n", delay,
                fr.qoe.mean_engagement,
                static_cast<unsigned long long>(fr.qoe.cdn_switches),
                fr.peak_stalled_fraction, orr.qoe.mean_engagement,
                orr.appp_switches + orr.infp_switches,
                orr.green_path ? "yes" : "no");
  }
  std::printf("\n(delay applies to both A2I and I2A; the oscillation world's "
              "ISP period is 120 s, so delays beyond that dominate its "
              "control loop)\n");
  return 0;
}
