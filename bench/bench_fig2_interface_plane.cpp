// E1 (Fig 1/2): cost of the EONA interface plane.
//
// The architecture figures claim a deployable message plane between AppPs
// and InfPs. This bench measures it: wire encode/decode at realistic report
// sizes, looking-glass publish/query, and policy application -- the per-
// report costs a provider pays per control epoch.
#include <benchmark/benchmark.h>

#include "json_main.hpp"
#include "eona/endpoint.hpp"
#include "eona/wire.hpp"
#include "sim/rng.hpp"

namespace {

using namespace eona;

core::A2IReport make_a2i(std::size_t groups, std::size_t forecasts) {
  sim::Rng rng(1);
  core::A2IReport report;
  report.from = ProviderId(0);
  report.generated_at = 100.0;
  for (std::size_t i = 0; i < groups; ++i) {
    core::QoeGroupReport g;
    g.isp = IspId(static_cast<std::uint32_t>(i % 16));
    g.cdn = CdnId(static_cast<std::uint32_t>(i % 4));
    g.mean_buffering_ratio = rng.uniform(0, 0.3);
    g.p90_buffering_ratio = rng.uniform(0, 0.6);
    g.mean_bitrate = rng.uniform(0, 6e6);
    g.mean_join_time = rng.uniform(0, 10);
    g.mean_engagement = rng.uniform(0, 1);
    g.sessions = static_cast<std::uint64_t>(rng.uniform_int(10, 100000));
    report.groups.push_back(g);
  }
  for (std::size_t i = 0; i < forecasts; ++i) {
    core::TrafficForecast f;
    f.isp = IspId(static_cast<std::uint32_t>(i % 16));
    f.cdn = CdnId(static_cast<std::uint32_t>(i % 4));
    f.expected_rate = rng.uniform(0, 1e9);
    report.forecasts.push_back(f);
  }
  return report;
}

core::I2AReport make_i2a(std::size_t peerings, std::size_t hints) {
  sim::Rng rng(2);
  core::I2AReport report;
  report.from = ProviderId(1);
  for (std::size_t i = 0; i < peerings; ++i) {
    core::PeeringStatus p;
    p.peering = PeeringId(static_cast<std::uint32_t>(i));
    p.capacity = rng.uniform(1e7, 1e9);
    p.utilization = rng.uniform(0, 1);
    report.peerings.push_back(p);
  }
  for (std::size_t i = 0; i < hints; ++i) {
    core::ServerHint h;
    h.cdn = CdnId(static_cast<std::uint32_t>(i % 4));
    h.server = ServerId(static_cast<std::uint32_t>(i));
    h.load = rng.uniform(0, 1);
    report.server_hints.push_back(h);
  }
  return report;
}

void BM_A2IEncode(benchmark::State& state) {
  auto report = make_a2i(static_cast<std::size_t>(state.range(0)),
                         static_cast<std::size_t>(state.range(0)) / 4 + 1);
  std::size_t bytes = core::encode(report).size();
  for (auto _ : state) benchmark::DoNotOptimize(core::encode(report));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  state.counters["frame_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_A2IEncode)->Arg(16)->Arg(256)->Arg(4096);

void BM_A2IDecode(benchmark::State& state) {
  auto report = make_a2i(static_cast<std::size_t>(state.range(0)),
                         static_cast<std::size_t>(state.range(0)) / 4 + 1);
  core::WireBytes bytes = core::encode(report);
  for (auto _ : state) benchmark::DoNotOptimize(core::decode_a2i(bytes));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_A2IDecode)->Arg(16)->Arg(256)->Arg(4096);

void BM_I2ARoundTrip(benchmark::State& state) {
  auto report = make_i2a(static_cast<std::size_t>(state.range(0)),
                         static_cast<std::size_t>(state.range(0)) * 4);
  for (auto _ : state) {
    core::WireBytes bytes = core::encode(report);
    benchmark::DoNotOptimize(core::decode_i2a(bytes));
  }
}
BENCHMARK(BM_I2ARoundTrip)->Arg(4)->Arg(64);

void BM_LookingGlassPublish(benchmark::State& state) {
  core::A2IEndpoint glass(ProviderId(0));
  auto peers = static_cast<std::size_t>(state.range(0));
  for (std::size_t p = 0; p < peers; ++p)
    glass.authorize(ProviderId(static_cast<std::uint32_t>(p + 1)), "tok");
  auto report = make_a2i(256, 64);
  TimePoint now = 0.0;
  for (auto _ : state) {
    glass.publish(report, now);
    now += 1.0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(peers));
}
BENCHMARK(BM_LookingGlassPublish)->Arg(1)->Arg(8)->Arg(64);

void BM_LookingGlassQuery(benchmark::State& state) {
  core::A2IEndpoint glass(ProviderId(0));
  glass.authorize(ProviderId(1), "tok");
  glass.publish(make_a2i(256, 64), 0.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(glass.query(ProviderId(1), "tok", 1.0));
}
BENCHMARK(BM_LookingGlassQuery);

void BM_PolicyApplication(benchmark::State& state) {
  core::A2IPolicy policy;
  policy.k_anonymity = 50;
  auto report = make_a2i(static_cast<std::size_t>(state.range(0)), 16);
  for (auto _ : state) benchmark::DoNotOptimize(policy.apply(report));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PolicyApplication)->Arg(256)->Arg(4096);

}  // namespace

EONA_BENCHMARK_JSON_MAIN("BENCH_fig2_interface_plane.json")
