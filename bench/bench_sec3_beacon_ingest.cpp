// E14 (§3 "big data platform"): beacon-ingest throughput of the A2I
// telemetry pipeline at realistic group cardinalities.
//
// The paper's AppP collects "user experience for tens of millions of
// sessions each day" and aggregates it by attribute tuples before it ever
// crosses the A2I boundary. This bench pins the cost of that ingest path:
// beacons/s into the group-by and windowed aggregators at 1k / 16k / 128k
// distinct (ISP, CDN, server) groups, for both the interned dense-id
// pipeline (telemetry/interner.hpp + group_table.hpp) and a faithful copy
// of the pre-interning baseline (std::unordered_map<Dimensions, ...> with a
// struct hash + try_emplace per beacon), plus the windowed snapshot/query
// paths the controller reads. Results land in BENCH_sec3_beacon_ingest.json
// (see json_main.hpp) so the before/after is tracked run over run.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "json_main.hpp"
#include "sim/rng.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/p2_quantile.hpp"

namespace {

using namespace eona;
using telemetry::Dim;
using telemetry::Dimensions;
using telemetry::MetricAggregate;
using telemetry::SessionRecord;

constexpr Dim kMask = Dim::kIsp | Dim::kCdn | Dim::kServer;

// ---------------------------------------------------------------------------
// Legacy baseline: verbatim behaviour of the pre-interning aggregators
// (struct-keyed unordered_map, try_emplace per beacon, merge-everything
// snapshot). Kept here, not in src/, purely as the bench's "before" side.
// ---------------------------------------------------------------------------

class LegacyGroupBy {
 public:
  explicit LegacyGroupBy(Dim mask) : mask_(mask) {}

  void ingest(const SessionRecord& record) {
    Dimensions key = project(record.dims, mask_);
    Group& group = groups_.try_emplace(key, Group{}).first->second;
    group.aggregate.add(record.metrics);
    group.buffering_p50.add(record.metrics.buffering_ratio);
    group.buffering_p90.add(record.metrics.buffering_ratio);
  }

  [[nodiscard]] std::size_t group_count() const { return groups_.size(); }

 private:
  struct Group {
    MetricAggregate aggregate;
    telemetry::P2Quantile buffering_p50{0.5};
    telemetry::P2Quantile buffering_p90{0.9};
  };
  Dim mask_;
  std::unordered_map<Dimensions, Group> groups_;
};

class LegacyWindowed {
 public:
  LegacyWindowed(Dim mask, Duration window, std::size_t buckets)
      : mask_(mask),
        bucket_span_(window / static_cast<double>(buckets)),
        ring_(buckets) {}

  void ingest(const SessionRecord& record) {
    Bucket& bucket = bucket_for(record.timestamp);
    bucket.groups[project(record.dims, mask_)].add(record.metrics);
  }

  [[nodiscard]] MetricAggregate query(const Dimensions& dims,
                                      TimePoint now) const {
    Dimensions key = project(dims, mask_);
    MetricAggregate merged;
    for (const Bucket& bucket : ring_) {
      if (!live(bucket, now)) continue;
      auto it = bucket.groups.find(key);
      if (it != bucket.groups.end()) merged.merge(it->second);
    }
    return merged;
  }

  [[nodiscard]] std::vector<std::pair<Dimensions, MetricAggregate>> snapshot(
      TimePoint now) const {
    std::unordered_map<Dimensions, MetricAggregate> merged;
    for (const Bucket& bucket : ring_) {
      if (!live(bucket, now)) continue;
      for (const auto& [key, agg] : bucket.groups) merged[key].merge(agg);
    }
    std::vector<std::pair<Dimensions, MetricAggregate>> result(merged.begin(),
                                                               merged.end());
    std::sort(result.begin(), result.end(), [](const auto& a, const auto& b) {
      return telemetry::dim_order(a.first, b.first);
    });
    return result;
  }

 private:
  struct Bucket {
    std::int64_t index = -1;
    std::unordered_map<Dimensions, MetricAggregate> groups;
  };

  [[nodiscard]] std::int64_t index_of(TimePoint t) const {
    return static_cast<std::int64_t>(t / bucket_span_);
  }

  Bucket& bucket_for(TimePoint t) {
    std::int64_t idx = index_of(t);
    Bucket& bucket = ring_[static_cast<std::size_t>(idx) % ring_.size()];
    if (bucket.index != idx) {
      bucket.index = idx;
      bucket.groups.clear();
    }
    return bucket;
  }

  [[nodiscard]] bool live(const Bucket& bucket, TimePoint now) const {
    if (bucket.index < 0) return false;
    std::int64_t newest = index_of(now);
    std::int64_t oldest = newest - static_cast<std::int64_t>(ring_.size()) + 1;
    return bucket.index >= oldest && bucket.index <= newest;
  }

  Dim mask_;
  Duration bucket_span_;
  std::vector<Bucket> ring_;
};

// ---------------------------------------------------------------------------
// Workload: a deterministic beacon stream scattering over exactly `groups`
// distinct (ISP, CDN, server) tuples (groups = isps x 4 x 16, power of two)
// with monotonically advancing timestamps (10k beacons/s of sim time) --
// the arrival pattern the collector actually sees.
// ---------------------------------------------------------------------------

class BeaconStream {
 public:
  explicit BeaconStream(std::uint32_t groups) : groups_(groups) {
    sim::Rng rng(42);
    metrics_.resize(kBatch);
    for (auto& m : metrics_) {
      m.buffering_ratio = rng.uniform(0, 0.3);
      m.avg_bitrate = rng.uniform(2e5, 6e6);
      m.join_time = rng.uniform(0, 10);
      m.engagement = rng.uniform(0, 1);
      m.bytes_delivered = rng.uniform(1e5, 1e8);
    }
  }

  SessionRecord next() {
    std::uint32_t g = (static_cast<std::uint32_t>(n_) * 2654435761u) &
                      (groups_ - 1);
    SessionRecord r;
    r.session = SessionId(n_);
    r.dims.isp = IspId(g >> 6);
    r.dims.cdn = CdnId((g >> 4) & 3);
    r.dims.server = ServerId(g & 15);
    r.metrics = metrics_[n_ & (kBatch - 1)];
    r.timestamp = static_cast<double>(n_) * 1e-4;
    ++n_;
    return r;
  }

  [[nodiscard]] TimePoint time() const { return static_cast<double>(n_) * 1e-4; }

 private:
  static constexpr std::size_t kBatch = 4096;
  std::uint32_t groups_;
  std::uint64_t n_ = 0;
  std::vector<telemetry::SessionMetrics> metrics_;
};

template <typename Agg>
void prefill(Agg& agg, BeaconStream& stream, std::uint32_t groups) {
  for (std::uint32_t i = 0; i < 4 * groups; ++i) agg.ingest(stream.next());
}

// --- ingest -----------------------------------------------------------------

void BM_BeaconIngest_Legacy(benchmark::State& state) {
  auto groups = static_cast<std::uint32_t>(state.range(0));
  BeaconStream stream(groups);
  LegacyGroupBy agg(kMask);
  prefill(agg, stream, groups);
  for (auto _ : state) agg.ingest(stream.next());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["groups"] = static_cast<double>(agg.group_count());
}

void BM_BeaconIngest_Interned(benchmark::State& state) {
  auto groups = static_cast<std::uint32_t>(state.range(0));
  BeaconStream stream(groups);
  telemetry::GroupByAggregator agg(kMask);
  prefill(agg, stream, groups);
  for (auto _ : state) agg.ingest(stream.next());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["groups"] = static_cast<double>(agg.group_count());
}

void BM_WindowedIngest_Legacy(benchmark::State& state) {
  auto groups = static_cast<std::uint32_t>(state.range(0));
  BeaconStream stream(groups);
  LegacyWindowed agg(kMask, 60.0, 6);
  prefill(agg, stream, groups);
  for (auto _ : state) agg.ingest(stream.next());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_WindowedIngest_Interned(benchmark::State& state) {
  auto groups = static_cast<std::uint32_t>(state.range(0));
  BeaconStream stream(groups);
  telemetry::WindowedAggregator agg(kMask, 60.0, 6);
  prefill(agg, stream, groups);
  for (auto _ : state) agg.ingest(stream.next());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// --- the pipeline: ingest plus the per-control-tick reads -------------------
// What the AppP actually does with the windowed aggregates: every control
// epoch it ingests one beacon per active session (beacon period == control
// period) and then reads several full snapshots (A2I report build at two
// projections, per-CDN buffering, primary-QoE check) plus point queries.
// Sustained beacons/s through that loop is the pipeline's ingest
// throughput; the read side is where merge-everything-per-call collapses at
// high cardinality and the incremental window pays off.

template <typename Agg>
void pipeline_tick(benchmark::State& state, Agg& agg, BeaconStream& stream,
                   std::uint32_t groups) {
  Dimensions probe;
  probe.isp = IspId(1);
  probe.cdn = CdnId(1);
  probe.server = ServerId(1);
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < groups; ++i) agg.ingest(stream.next());
    TimePoint now = stream.time();
    for (int s = 0; s < 4; ++s) benchmark::DoNotOptimize(agg.snapshot(now));
    benchmark::DoNotOptimize(agg.query(probe, now));
    benchmark::DoNotOptimize(agg.query(probe, now));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          groups);
}

void BM_WindowedPipelineTick_Legacy(benchmark::State& state) {
  auto groups = static_cast<std::uint32_t>(state.range(0));
  BeaconStream stream(groups);
  LegacyWindowed agg(kMask, 60.0, 6);
  prefill(agg, stream, groups);
  pipeline_tick(state, agg, stream, groups);
}

void BM_WindowedPipelineTick_Interned(benchmark::State& state) {
  auto groups = static_cast<std::uint32_t>(state.range(0));
  BeaconStream stream(groups);
  telemetry::WindowedAggregator agg(kMask, 60.0, 6);
  prefill(agg, stream, groups);
  pipeline_tick(state, agg, stream, groups);
}

#define EONA_INGEST_ARGS \
  ArgNames({"groups"})->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17)

BENCHMARK(BM_BeaconIngest_Legacy)->EONA_INGEST_ARGS;
BENCHMARK(BM_BeaconIngest_Interned)->EONA_INGEST_ARGS;
BENCHMARK(BM_WindowedIngest_Legacy)->EONA_INGEST_ARGS;
BENCHMARK(BM_WindowedIngest_Interned)->EONA_INGEST_ARGS;
BENCHMARK(BM_WindowedPipelineTick_Legacy)->EONA_INGEST_ARGS;
BENCHMARK(BM_WindowedPipelineTick_Interned)->EONA_INGEST_ARGS;

}  // namespace

EONA_BENCHMARK_JSON_MAIN("BENCH_sec3_beacon_ingest.json")
