// E15 (§4 peering failure): when the preferred interconnect dies mid-run,
// how fast does each control world get its viewers back to smooth playback?
//
// The paper's §4 claim is that an experience-oriented control plane turns a
// peering outage from "every player rediscovers the failure by stalling"
// into a coordinated re-steer: the InfP migrates the affected sector to the
// surviving interconnect the moment the fault lands, and the I2A update lets
// players re-select with information instead of retry roulette.
//
// Sweep: seeds x {baseline, eona} on the failover scenario (X@B dies at
// t=120 s and stays down). Reported per run: time-to-QoE-recovery (when the
// last stalled player resumed) and rebuffer-seconds (the integral of the
// stalled-player count after the outage), plus the failure-accounting
// counters.
//
// Verdicts (acceptance thresholds):
//  * EONA's mean time-to-recovery is strictly lower than baseline's;
//  * EONA's mean rebuffer-seconds is strictly lower than baseline's;
//  * same seed + mode reproduces bit-identical recovery numbers.
//
// Always writes a machine-readable JSON summary (per-run rows, per-mode
// means, verdicts) for the CI bench artifact; path defaults to
// BENCH_sec4_failover.json, overridden by argv[1] or EONA_BENCH_OUT.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "eona/json.hpp"
#include "scenarios/failover.hpp"

using namespace eona;
using scenarios::ControlMode;

namespace {

constexpr std::uint64_t kSeeds[] = {1, 2, 3, 4, 5};

scenarios::FailoverResult run(std::uint64_t seed, ControlMode mode) {
  scenarios::FailoverConfig config;
  config.seed = seed;
  config.mode = mode;
  return scenarios::run_failover(config);
}

void print_row(const char* mode, std::uint64_t seed,
               const scenarios::FailoverResult& r) {
  std::printf(
      "%8s %4llu | %8.1f %9.1f | %7.3f %6llu | %6llu %6llu %6llu %6llu\n",
      mode, static_cast<unsigned long long>(seed), r.time_to_recovery,
      r.rebuffer_seconds, r.qoe.mean_engagement,
      static_cast<unsigned long long>(r.qoe.stalls),
      static_cast<unsigned long long>(r.aborted_transfers),
      static_cast<unsigned long long>(r.stranded_sessions),
      static_cast<unsigned long long>(r.resumed_sessions),
      static_cast<unsigned long long>(r.infp_failovers));
}

core::JsonValue row_json(std::uint64_t seed, ControlMode mode,
                         const scenarios::FailoverResult& r) {
  core::JsonValue row = core::JsonValue::object();
  row.set("seed", core::JsonValue::number(static_cast<double>(seed)));
  row.set("mode", core::JsonValue::string(scenarios::to_string(mode)));
  row.set("time_to_recovery", core::JsonValue::number(r.time_to_recovery));
  row.set("rebuffer_seconds", core::JsonValue::number(r.rebuffer_seconds));
  row.set("mean_engagement", core::JsonValue::number(r.qoe.mean_engagement));
  row.set("stalls",
          core::JsonValue::number(static_cast<double>(r.qoe.stalls)));
  row.set("aborted_transfers",
          core::JsonValue::number(static_cast<double>(r.aborted_transfers)));
  row.set("stranded_sessions",
          core::JsonValue::number(static_cast<double>(r.stranded_sessions)));
  row.set("resumed_sessions",
          core::JsonValue::number(static_cast<double>(r.resumed_sessions)));
  row.set("infp_failovers",
          core::JsonValue::number(static_cast<double>(r.infp_failovers)));
  row.set("auditor_checks",
          core::JsonValue::number(static_cast<double>(r.auditor_checks)));
  return row;
}

struct Means {
  double ttr = 0.0;
  double rebuffer = 0.0;
  double engagement = 0.0;
};

Means mean_of(const std::vector<scenarios::FailoverResult>& runs) {
  Means m;
  for (const auto& r : runs) {
    m.ttr += r.time_to_recovery;
    m.rebuffer += r.rebuffer_seconds;
    m.engagement += r.qoe.mean_engagement;
  }
  auto n = static_cast<double>(runs.size());
  m.ttr /= n;
  m.rebuffer /= n;
  m.engagement /= n;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_sec4_failover.json";
  if (const char* env = std::getenv("EONA_BENCH_OUT")) out_path = env;
  if (argc > 1) out_path = argv[1];

  std::printf("=== E15 / Sec 4: peering-failure recovery, "
              "coordinated vs siloed ===\n\n");
  std::printf("%8s %4s | %8s %9s | %7s %6s | %6s %6s %6s %6s\n", "mode",
              "seed", "ttr[s]", "rebuf[s]", "engage", "stalls", "abort",
              "strand", "resume", "f-over");

  core::JsonValue rows = core::JsonValue::array();
  std::vector<scenarios::FailoverResult> base_runs, eona_runs;
  for (std::uint64_t seed : kSeeds) {
    scenarios::FailoverResult base = run(seed, ControlMode::kBaseline);
    scenarios::FailoverResult eona = run(seed, ControlMode::kEona);
    print_row("baseline", seed, base);
    print_row("eona", seed, eona);
    rows.push_back(row_json(seed, ControlMode::kBaseline, base));
    rows.push_back(row_json(seed, ControlMode::kEona, eona));
    base_runs.push_back(std::move(base));
    eona_runs.push_back(std::move(eona));
  }

  Means base_mean = mean_of(base_runs);
  Means eona_mean = mean_of(eona_runs);
  std::printf("\n%8s mean | %8.1f %9.1f | %7.3f\n", "baseline", base_mean.ttr,
              base_mean.rebuffer, base_mean.engagement);
  std::printf("%8s mean | %8.1f %9.1f | %7.3f\n", "eona", eona_mean.ttr,
              eona_mean.rebuffer, eona_mean.engagement);

  std::printf("\n--- reproducibility: seed 1, eona, same config twice ---\n");
  scenarios::FailoverResult again = run(kSeeds[0], ControlMode::kEona);
  const scenarios::FailoverResult& first = eona_runs.front();
  bool reproducible =
      again.time_to_recovery == first.time_to_recovery &&
      again.rebuffer_seconds == first.rebuffer_seconds &&
      again.qoe.mean_engagement == first.qoe.mean_engagement &&
      again.qoe.stalls == first.qoe.stalls &&
      again.aborted_transfers == first.aborted_transfers &&
      again.stranded_sessions == first.stranded_sessions &&
      again.resumed_sessions == first.resumed_sessions &&
      again.infp_failovers == first.infp_failovers &&
      again.auditor_checks == first.auditor_checks;
  std::printf("run1 ttr=%.3f rebuf=%.3f engage=%.6f | "
              "run2 ttr=%.3f rebuf=%.3f engage=%.6f\n",
              first.time_to_recovery, first.rebuffer_seconds,
              first.qoe.mean_engagement, again.time_to_recovery,
              again.rebuffer_seconds, again.qoe.mean_engagement);

  bool faster = eona_mean.ttr < base_mean.ttr;
  bool smoother = eona_mean.rebuffer < base_mean.rebuffer;
  std::printf("\n--- verdicts ---\n");
  std::printf("eona mean ttr %.1f s vs baseline %.1f s (need lower): %s\n",
              eona_mean.ttr, base_mean.ttr, faster ? "PASS" : "FAIL");
  std::printf(
      "eona mean rebuffer %.1f s vs baseline %.1f s (need lower): %s\n",
      eona_mean.rebuffer, base_mean.rebuffer, smoother ? "PASS" : "FAIL");
  std::printf("same seed reproduces identical numbers: %s\n",
              reproducible ? "PASS" : "FAIL");

  core::JsonValue doc = core::JsonValue::object();
  doc.set("experiment", core::JsonValue::string("E15_sec4_failover"));
  doc.set("runs", std::move(rows));
  core::JsonValue means = core::JsonValue::object();
  for (const auto& [label, m] :
       {std::pair<const char*, Means>{"baseline", base_mean},
        std::pair<const char*, Means>{"eona", eona_mean}}) {
    core::JsonValue entry = core::JsonValue::object();
    entry.set("time_to_recovery", core::JsonValue::number(m.ttr));
    entry.set("rebuffer_seconds", core::JsonValue::number(m.rebuffer));
    entry.set("mean_engagement", core::JsonValue::number(m.engagement));
    means.set(label, std::move(entry));
  }
  doc.set("means", std::move(means));
  core::JsonValue verdicts = core::JsonValue::object();
  verdicts.set("eona_faster_recovery", core::JsonValue::boolean(faster));
  verdicts.set("eona_fewer_rebuffer_seconds",
               core::JsonValue::boolean(smoother));
  verdicts.set("reproducible", core::JsonValue::boolean(reproducible));
  doc.set("verdicts", std::move(verdicts));
  std::ofstream out(out_path, std::ios::binary);
  if (out) {
    std::string text = doc.dump(2);
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out << "\n";
    std::fprintf(stderr, "bench results written to %s\n", out_path.c_str());
  }

  return (faster && smoother && reproducible) ? 0 : 1;
}
