// E16 (§3 measurement plane): the columnar telemetry store at scale, and
// what forecasting on top of it buys the InfP.
//
// Two halves:
//
//  1. Store mechanics. Ingest 10M synthetic narrow rows (the shape the
//     StoreRecorder produces from the A2I stream) and time representative
//     query plans -- full-metric mean, grouped p90, narrow filtered window.
//     The claim is that "measurement as a service" is cheap enough to sit
//     inside the control loop: ingest is millions of rows per second and a
//     full 10M-row scan answers in well under a second.
//
//  2. Forecast-driven provisioning. Sweep the flash-crowd scenario
//     (seeds x {off, reactive, forecast}) with elastic access-capacity
//     provisioning. Reactive ordering waits for the utilization window to
//     cross its threshold; forecast ordering trends the store's link_rate
//     rows (Holt linear trend) and orders while the wave is still ramping.
//     Reported per run: seconds with stalled_fraction over the QoE bar,
//     orders placed, final capacity.
//
// Verdicts (acceptance thresholds):
//  * ingest sustains >= 1M rows/s; the full-scan mean query answers 10M
//    rows in < 1 s;
//  * forecast's mean time-over-QoE-threshold is strictly lower than
//    reactive's, and no seed has forecast worse than reactive;
//  * same seed + forecast config reproduces bit-identical numbers.
//
// Always writes a machine-readable JSON summary (per-run rows, means,
// verdicts) for the CI bench artifact; path defaults to
// BENCH_sec3_store.json, overridden by argv[1] or EONA_BENCH_OUT.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "eona/json.hpp"
#include "scenarios/flashcrowd.hpp"
#include "telemetry/column_store.hpp"

using namespace eona;
using scenarios::ControlMode;

namespace {

constexpr std::uint64_t kSeeds[] = {1, 2, 3, 4, 5};
constexpr std::uint64_t kRows = 10'000'000;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// --- half 1: store mechanics ---------------------------------------------

/// Deterministic splitmix64 -- the synthetic rows must be identical across
/// runs so query timings compare like with like.
std::uint64_t mix(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

struct StoreBench {
  double ingest_seconds = 0.0;
  double ingest_rows_per_sec = 0.0;
  std::uint64_t rows = 0;
  std::size_t groups = 0;
  std::size_t segments = 0;
  double scan_mean_ms = 0.0;     ///< full-metric mean, no filters
  double grouped_p90_ms = 0.0;   ///< per-(isp,cdn) p90
  double window_mean_ms = 0.0;   ///< one isp, 60 s window, mean
  double scan_rows_per_sec = 0.0;
};

StoreBench run_store_bench() {
  StoreBench b;
  telemetry::ColumnStore store(60.0);
  const char* metrics[] = {"a2i_mean_buffering", "a2i_mean_bitrate",
                           "a2i_sessions",       "link_rate",
                           "link_util",          "a2i_mean_engagement"};
  telemetry::MetricId ids[6];
  for (int i = 0; i < 6; ++i) ids[i] = store.intern_metric(metrics[i]);

  std::uint64_t rng = 42;
  auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kRows; ++i) {
    std::uint64_t r = mix(rng);
    telemetry::Dimensions dims;
    dims.isp = IspId(static_cast<std::uint32_t>(r & 3));
    dims.cdn = CdnId(static_cast<std::uint32_t>((r >> 2) & 3));
    dims.server = ServerId(static_cast<std::uint32_t>((r >> 4) & 7));
    dims.region = static_cast<std::uint32_t>((r >> 7) & 15);
    // Rows arrive roughly time-ordered, like a live event stream.
    double t = static_cast<double>(i) * 3600.0 / static_cast<double>(kRows);
    double value = static_cast<double>((r >> 16) & 0xFFFF) / 65536.0;
    // Metric drawn from the high bits: `r % 6` would correlate with the
    // low dimension bits (r even <=> r % 6 even) and skew the group mix.
    store.append(t, dims, ids[(r >> 32) % 6], (r >> 11) & 31, value);
  }
  b.ingest_seconds = seconds_since(start);
  b.ingest_rows_per_sec = static_cast<double>(kRows) / b.ingest_seconds;
  b.rows = store.row_count();
  b.groups = store.group_count();
  b.segments = store.segment_count();

  telemetry::StoreQuery scan;
  scan.metric = "link_rate";
  scan.agg = telemetry::Agg::kMean;
  start = std::chrono::steady_clock::now();
  auto scan_out = store.run(scan);
  b.scan_mean_ms = seconds_since(start) * 1e3;
  b.scan_rows_per_sec =
      static_cast<double>(kRows) / (b.scan_mean_ms / 1e3);
  if (scan_out.empty()) std::abort();  // the plan must match rows

  telemetry::StoreQuery grouped;
  grouped.metric = "a2i_mean_buffering";
  grouped.group_by = telemetry::Dim::kIsp | telemetry::Dim::kCdn;
  grouped.agg = telemetry::Agg::kP90;
  start = std::chrono::steady_clock::now();
  auto grouped_out = store.run(grouped);
  b.grouped_p90_ms = seconds_since(start) * 1e3;
  if (grouped_out.size() != 16) std::abort();  // 4 isps x 4 cdns

  telemetry::StoreQuery window;
  window.metric = "link_util";
  window.isp = IspId(1);
  window.t0 = 1800.0;
  window.t1 = 1860.0;
  window.agg = telemetry::Agg::kMean;
  start = std::chrono::steady_clock::now();
  auto window_out = store.run(window);
  b.window_mean_ms = seconds_since(start) * 1e3;
  if (window_out.empty()) std::abort();
  return b;
}

// --- half 2: forecast vs reactive provisioning ---------------------------

/// The flash crowd that exposes the reactive lag: low steady load (so the
/// utilization window sits under the reactive trigger before the wave) and
/// a crowd of many small flows whose fair share squeezes the players below
/// their lowest rung until capacity arrives.
scenarios::FlashCrowdConfig provisioning_config(std::uint64_t seed,
                                                const char* provision) {
  scenarios::FlashCrowdConfig config;
  config.seed = seed;
  config.mode = ControlMode::kBaseline;
  config.arrival_rate = 0.03;
  config.crowd_flows = 400;
  config.crowd_background_fraction = 0.99;
  if (std::string(provision) != "off") {
    config.provision.enabled = true;
    config.provision.forecast_driven = std::string(provision) == "forecast";
    config.provision.step = mbps(20);
    config.provision.max_capacity = mbps(160);
    config.provision.order_utilization = 0.9;
  }
  return config;
}

core::JsonValue provision_row_json(std::uint64_t seed, const char* provision,
                                   const scenarios::FlashCrowdResult& r) {
  core::JsonValue row = core::JsonValue::object();
  row.set("seed", core::JsonValue::number(static_cast<double>(seed)));
  row.set("provision", core::JsonValue::string(provision));
  row.set("time_over_qoe_threshold",
          core::JsonValue::number(r.time_over_qoe_threshold));
  row.set("peak_stalled_fraction",
          core::JsonValue::number(r.peak_stalled_fraction));
  row.set("provision_orders",
          core::JsonValue::number(static_cast<double>(r.provision_orders)));
  row.set("final_access_capacity_mbps",
          core::JsonValue::number(r.final_access_capacity / 1e6));
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_sec3_store.json";
  if (const char* env = std::getenv("EONA_BENCH_OUT")) out_path = env;
  if (argc > 1) out_path = argv[1];

  std::printf("=== E16 / Sec 3: columnar telemetry store + "
              "forecast-driven provisioning ===\n\n");

  std::printf("--- store mechanics: %llu rows ---\n",
              static_cast<unsigned long long>(kRows));
  StoreBench sb = run_store_bench();
  std::printf("ingest        %7.2f s   %10.0f rows/s   "
              "(%zu groups, %zu segments)\n",
              sb.ingest_seconds, sb.ingest_rows_per_sec, sb.groups,
              sb.segments);
  std::printf("scan mean     %7.2f ms  %10.0f rows/s\n", sb.scan_mean_ms,
              sb.scan_rows_per_sec);
  std::printf("grouped p90   %7.2f ms  (group_by isp,cdn)\n",
              sb.grouped_p90_ms);
  std::printf("window mean   %7.2f ms  (isp=1, 60 s window)\n",
              sb.window_mean_ms);

  std::printf("\n--- provisioning: flash crowd, seeds x "
              "{off, reactive, forecast} ---\n");
  std::printf("%4s %9s | %8s %10s %7s %9s\n", "seed", "mode", "toq[s]",
              "peakstall", "orders", "cap[Mbps]");
  core::JsonValue rows = core::JsonValue::array();
  double reactive_total = 0.0, forecast_total = 0.0;
  bool none_worse = true;
  scenarios::FlashCrowdResult forecast_seed1{};
  for (std::uint64_t seed : kSeeds) {
    double reactive_toq = 0.0, forecast_toq = 0.0;
    for (const char* provision : {"off", "reactive", "forecast"}) {
      scenarios::FlashCrowdResult r =
          scenarios::run_flash_crowd(provisioning_config(seed, provision));
      std::printf("%4llu %9s | %8.1f %10.3f %7llu %9.0f\n",
                  static_cast<unsigned long long>(seed), provision,
                  r.time_over_qoe_threshold, r.peak_stalled_fraction,
                  static_cast<unsigned long long>(r.provision_orders),
                  r.final_access_capacity / 1e6);
      rows.push_back(provision_row_json(seed, provision, r));
      std::string mode = provision;
      if (mode == "reactive") reactive_toq = r.time_over_qoe_threshold;
      if (mode == "forecast") {
        forecast_toq = r.time_over_qoe_threshold;
        if (seed == kSeeds[0]) forecast_seed1 = std::move(r);
      }
    }
    reactive_total += reactive_toq;
    forecast_total += forecast_toq;
    if (forecast_toq > reactive_toq) none_worse = false;
  }
  const double n = static_cast<double>(std::size(kSeeds));
  double reactive_mean = reactive_total / n;
  double forecast_mean = forecast_total / n;
  std::printf("%4s %9s | %8.1f\n", "mean", "reactive", reactive_mean);
  std::printf("%4s %9s | %8.1f\n", "mean", "forecast", forecast_mean);

  std::printf("\n--- reproducibility: seed 1, forecast, same config "
              "twice ---\n");
  scenarios::FlashCrowdResult again =
      scenarios::run_flash_crowd(provisioning_config(kSeeds[0], "forecast"));
  bool reproducible =
      again.time_over_qoe_threshold ==
          forecast_seed1.time_over_qoe_threshold &&
      again.provision_orders == forecast_seed1.provision_orders &&
      again.final_access_capacity == forecast_seed1.final_access_capacity &&
      again.qoe.mean_engagement == forecast_seed1.qoe.mean_engagement;
  std::printf("run1 toq=%.3f orders=%llu | run2 toq=%.3f orders=%llu\n",
              forecast_seed1.time_over_qoe_threshold,
              static_cast<unsigned long long>(forecast_seed1.provision_orders),
              again.time_over_qoe_threshold,
              static_cast<unsigned long long>(again.provision_orders));

  bool ingest_fast = sb.ingest_rows_per_sec >= 1e6;
  bool scan_fast = sb.scan_mean_ms < 1000.0;
  bool forecast_wins = forecast_mean < reactive_mean && none_worse;
  std::printf("\n--- verdicts ---\n");
  std::printf("ingest %.0f rows/s (need >= 1M): %s\n", sb.ingest_rows_per_sec,
              ingest_fast ? "PASS" : "FAIL");
  std::printf("10M-row scan %.1f ms (need < 1000 ms): %s\n", sb.scan_mean_ms,
              scan_fast ? "PASS" : "FAIL");
  std::printf("forecast mean toq %.1f s vs reactive %.1f s "
              "(need strictly lower, no seed worse): %s\n",
              forecast_mean, reactive_mean, forecast_wins ? "PASS" : "FAIL");
  std::printf("same seed reproduces identical numbers: %s\n",
              reproducible ? "PASS" : "FAIL");

  core::JsonValue doc = core::JsonValue::object();
  doc.set("experiment", core::JsonValue::string("E16_sec3_store"));
  core::JsonValue store_json = core::JsonValue::object();
  store_json.set("rows", core::JsonValue::number(static_cast<double>(sb.rows)));
  store_json.set("groups",
                 core::JsonValue::number(static_cast<double>(sb.groups)));
  store_json.set("segments",
                 core::JsonValue::number(static_cast<double>(sb.segments)));
  store_json.set("ingest_rows_per_sec",
                 core::JsonValue::number(sb.ingest_rows_per_sec));
  store_json.set("scan_mean_ms", core::JsonValue::number(sb.scan_mean_ms));
  store_json.set("scan_rows_per_sec",
                 core::JsonValue::number(sb.scan_rows_per_sec));
  store_json.set("grouped_p90_ms",
                 core::JsonValue::number(sb.grouped_p90_ms));
  store_json.set("window_mean_ms",
                 core::JsonValue::number(sb.window_mean_ms));
  doc.set("store", std::move(store_json));
  doc.set("provisioning_runs", std::move(rows));
  core::JsonValue means = core::JsonValue::object();
  means.set("reactive_time_over_qoe_threshold",
            core::JsonValue::number(reactive_mean));
  means.set("forecast_time_over_qoe_threshold",
            core::JsonValue::number(forecast_mean));
  doc.set("means", std::move(means));
  core::JsonValue verdicts = core::JsonValue::object();
  verdicts.set("ingest_over_1m_rows_per_sec",
               core::JsonValue::boolean(ingest_fast));
  verdicts.set("scan_under_1s", core::JsonValue::boolean(scan_fast));
  verdicts.set("forecast_beats_reactive",
               core::JsonValue::boolean(forecast_wins));
  verdicts.set("reproducible", core::JsonValue::boolean(reproducible));
  doc.set("verdicts", std::move(verdicts));
  std::ofstream out(out_path, std::ios::binary);
  if (out) {
    std::string text = doc.dump(2);
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out << "\n";
    std::fprintf(stderr, "bench results written to %s\n", out_path.c_str());
  }

  return (ingest_fast && scan_fast && forecast_wins && reproducible) ? 0 : 1;
}
